#![deny(missing_docs)]

//! The seven Spark workloads of the paper's evaluation (Table 4),
//! expressed as [`sparklang`] programs over synthetic datasets.
//!
//! | Id | Program | Paper dataset | Our substitute |
//! |----|---------|---------------|----------------|
//! | PR | PageRank | Wikipedia German dump, 1.2 GB | power-law web graph |
//! | KM | K-Means | Wikipedia English dump, 5.7 GB | clustered points |
//! | LR | Logistic Regression | Wikipedia English dump, 5.7 GB | labeled points |
//! | TC | Transitive Closure | Notre Dame web graph, 21 MB | small power-law graph |
//! | CC | GraphX Connected Components | Wikipedia English dump | symmetric power-law graph |
//! | SSSP | GraphX Shortest Paths | Wikipedia English dump | weighted power-law graph |
//! | BC | MLlib Naive Bayes | KDD 2012, 10.1 GB | labeled sparse documents |
//!
//! Dataset sizes are scaled ~1000x down to match the simulator's
//! 1 simulated-MB-per-paper-GB convention (see `panthera::SIM_GB`); the
//! `scale` knob of [`build_workload`] shrinks or grows them further.
//!
//! ```
//! use workloads::{build_workload, WorkloadId};
//! use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
//!
//! let w = build_workload(WorkloadId::Tc, 0.3, 42);
//! let config = SystemConfig::new(MemoryMode::Panthera, 4 * SIM_GB, 1.0 / 3.0);
//! let run = RunBuilder::new(&w.program, w.fns, w.data)
//!     .config(config)
//!     .run()
//!     .expect("valid configuration");
//! assert!(!run.results.is_empty());
//! assert!(run.report.elapsed_s > 0.0);
//! ```

mod bayes;
mod data;
mod graphx;
mod hashjoin;
mod kmeans;
mod logreg;
mod pagerank;
mod transitive_closure;
mod wordcount;

pub use bayes::naive_bayes;
pub use data::{
    clustered_points, labeled_documents, labeled_points, power_law_edges, power_law_edges_text,
    symmetric_edges, weighted_edges,
};
pub use graphx::{connected_components, sssp};
pub use hashjoin::{hashjoin_input, run_hashjoin, HashJoinInput, HashJoinOutcome};
pub use kmeans::kmeans;
pub use logreg::logistic_regression;
pub use pagerank::pagerank;
pub use transitive_closure::transitive_closure;
pub use wordcount::wordcount;

use sparklang::{FnTable, Program};
use sparklet::DataRegistry;

/// A program plus everything needed to run it.
#[derive(Debug)]
pub struct BuiltWorkload {
    /// The driver program.
    pub program: Program,
    /// Its user closures.
    pub fns: FnTable,
    /// Its input datasets.
    pub data: DataRegistry,
}

/// The seven evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// PageRank.
    Pr,
    /// K-Means.
    Km,
    /// Logistic Regression.
    Lr,
    /// Transitive Closure.
    Tc,
    /// GraphX Connected Components.
    Cc,
    /// GraphX Single-Source Shortest Paths.
    Sssp,
    /// MLlib Naive Bayes Classifiers.
    Bc,
}

impl WorkloadId {
    /// All workloads in Table 4 order.
    pub const ALL: [WorkloadId; 7] = [
        WorkloadId::Pr,
        WorkloadId::Km,
        WorkloadId::Lr,
        WorkloadId::Tc,
        WorkloadId::Cc,
        WorkloadId::Sssp,
        WorkloadId::Bc,
    ];

    /// The paper's abbreviation.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Pr => "PR",
            WorkloadId::Km => "KM",
            WorkloadId::Lr => "LR",
            WorkloadId::Tc => "TC",
            WorkloadId::Cc => "GraphX-CC",
            WorkloadId::Sssp => "GraphX-SSSP",
            WorkloadId::Bc => "MLlib-BC",
        }
    }

    /// The paper's dataset description (Table 4).
    pub fn paper_dataset(self) -> &'static str {
        match self {
            WorkloadId::Pr => "Wikipedia Full Dump, German (1.2GB)",
            WorkloadId::Km | WorkloadId::Lr | WorkloadId::Cc | WorkloadId::Sssp => {
                "Wikipedia Full Dump, English (5.7GB)"
            }
            WorkloadId::Tc => "Notre Dame Webgraph (21MB)",
            WorkloadId::Bc => "KDD 2012 (10.1GB)",
        }
    }

    /// Parse an abbreviation (case-insensitive).
    pub fn parse(s: &str) -> Option<WorkloadId> {
        match s.to_ascii_uppercase().as_str() {
            "PR" => Some(WorkloadId::Pr),
            "KM" => Some(WorkloadId::Km),
            "LR" => Some(WorkloadId::Lr),
            "TC" => Some(WorkloadId::Tc),
            "CC" | "GRAPHX-CC" => Some(WorkloadId::Cc),
            "SSSP" | "GRAPHX-SSSP" => Some(WorkloadId::Sssp),
            "BC" | "MLLIB-BC" => Some(WorkloadId::Bc),
            _ => None,
        }
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build a workload at `scale` (1.0 = the default scaled-down sizes;
/// smaller values shrink the datasets proportionally, for quick runs).
pub fn build_workload(id: WorkloadId, scale: f64, seed: u64) -> BuiltWorkload {
    assert!(scale > 0.0, "scale must be positive");
    let s = |n: usize| ((n as f64 * scale) as usize).max(8);
    match id {
        WorkloadId::Pr => pagerank(s(4_500), s(24_000), 8, seed),
        WorkloadId::Km => kmeans(s(12_000), 8, 8, 8, seed),
        WorkloadId::Lr => logistic_regression(s(12_000), 8, 8, seed),
        WorkloadId::Tc => transitive_closure(s(160).min(320), s(640), 3, seed),
        WorkloadId::Cc => connected_components(s(4_000), s(14_000), 8, seed),
        WorkloadId::Sssp => sssp(s(4_000), s(14_000), 8, seed),
        WorkloadId::Bc => naive_bayes(s(6_000), 800, 4, 12, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_build() {
        for id in WorkloadId::ALL {
            let w = build_workload(id, 0.05, 1);
            assert!(!w.program.stmts.is_empty(), "{id}");
            assert!(w.program.n_vars() > 0, "{id}");
        }
    }

    #[test]
    fn parse_roundtrip() {
        for id in WorkloadId::ALL {
            assert_eq!(WorkloadId::parse(id.name()), Some(id));
        }
        assert_eq!(WorkloadId::parse("nope"), None);
    }
}
