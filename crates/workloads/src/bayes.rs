//! MLlib Naive Bayes classifier training: one pass of aggregations over a
//! cached document set, no loops — the analysis's all-NVM flip rule fires
//! and everything persisted lands in DRAM first.

use crate::data::labeled_documents;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;

/// Build Naive Bayes training over synthetic labeled documents.
pub fn naive_bayes(
    n_docs: usize,
    vocab: usize,
    n_labels: usize,
    words_per_doc: usize,
    seed: u64,
) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("mllib-bayes");
    let vocab_i = vocab as i64;

    // (label, words) -> [(label * vocab + word, 1)]: per-class word counts.
    let explode = b.flat_map_fn(move |r| {
        let (label, words) = r.as_pair().expect("(label, words)");
        let label = label.as_long().expect("label");
        let Payload::Longs(words) = words else {
            panic!("expected word ids")
        };
        words
            .iter()
            .map(|w| Payload::keyed(label * vocab_i + w, Payload::Long(1)))
            .collect()
    });
    // (label, words) -> (label, 1): class priors.
    let label_one = b.map_fn(|r| {
        let (label, _) = r.as_pair().expect("(label, words)");
        Payload::pair(label.clone(), Payload::Long(1))
    });
    let add = b
        .reduce_fn(|a, c| Payload::Long(a.as_long().expect("count") + c.as_long().expect("count")));
    // Laplace-smoothed log-likelihood per (class, word) cell; applied via
    // mapValues, so it sees the count only.
    let smooth = b.map_fn(move |count| {
        let n = count.as_long().expect("count") as f64;
        Payload::Double(((n + 1.0) / (vocab_i as f64)).ln())
    });

    let src = b.source("kdd-2012");
    let docs = b.bind("docs", src);
    b.persist(docs, StorageLevel::MemoryOnly);

    let counts = b.bind(
        "wordCounts",
        b.var(docs).flat_map(explode).reduce_by_key(add),
    );
    b.persist(counts, StorageLevel::MemoryOnly);
    let model = b.bind("model", b.var(counts).map_values(smooth));
    b.action(model, ActionKind::Count);

    let priors = b.bind("priors", b.var(docs).map(label_one).reduce_by_key(add));
    b.action(priors, ActionKind::Collect);

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "kdd-2012",
        labeled_documents(n_docs, vocab, n_labels, words_per_doc, seed),
    );
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::{infer_tags, TagReason};
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;

    #[test]
    fn no_loops_means_all_flipped_to_dram() {
        let w = naive_bayes(100, 50, 2, 5, 1);
        let tags = infer_tags(&w.program);
        for v in 0..4u32 {
            let t = &tags.vars[&VarId(v)];
            assert_eq!(t.tag, Some(MemoryTag::Dram), "var {v}");
            assert_eq!(t.reason, TagReason::AllNvmFlip, "var {v}");
        }
    }
}
