//! Spark PageRank — the paper's running example (Figure 2a).
//!
//! `links` is built once, cached with `MEMORY_ONLY`, and read every
//! iteration (the analysis tags it DRAM); `contribs` is re-created and
//! persisted with `MEMORY_AND_DISK_SER` every iteration, primarily for
//! fault tolerance (tagged NVM).

use crate::data::power_law_edges_text;
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
use sparklet::DataRegistry;

/// Modelled URL length in the synthetic link graph.
const URL_LEN: u32 = 40;

/// Build PageRank over a synthetic power-law web graph with URL-string
/// vertices.
pub fn pagerank(n_vertices: usize, n_edges: usize, iters: u32, seed: u64) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("pagerank");

    let spread = b.flat_map_fn(|joined| {
        // joined = (urls, rank) after `.values()` of links.join(ranks).
        let (urls, rank) = joined.as_pair().expect("(urls, rank)");
        let rank = rank.as_double().expect("rank");
        match urls {
            Payload::List(urls) => {
                let size = urls.len().max(1) as f64;
                urls.iter()
                    .map(|u| Payload::pair(u.clone(), Payload::Double(rank / size)))
                    .collect()
            }
            other => panic!("expected adjacency list, got {other:?}"),
        }
    });
    let one = b.map_fn(|_| Payload::Double(1.0));
    let add = b.reduce_fn(|a, c| {
        Payload::Double(a.as_double().expect("contrib") + c.as_double().expect("contrib"))
    });
    let damp = b.map_fn(|v| Payload::Double(0.15 + 0.85 * v.as_double().expect("sum")));

    // var links = lines.map{...}.distinct().groupByKey()
    //                 .persist(StorageLevel.MEMORY_ONLY)
    let lines = b.source("wikipedia-links");
    let links = b.bind("links", lines.distinct().group_by_key());
    b.persist(links, StorageLevel::MemoryOnly);

    // var ranks = links.mapValues(v => 1.0)
    let ranks = b.bind("ranks", b.var(links).map_values(one));

    // for (i <- 1 to iters) { ... }
    b.loop_n(iters, |b| {
        let contribs_expr = b.var(links).join(b.var(ranks)).values().flat_map(spread);
        let contribs = b.bind("contribs", contribs_expr);
        b.persist(contribs, StorageLevel::MemoryAndDiskSer);
        let ranks_expr = b.var(contribs).reduce_by_key(add).map_values(damp);
        b.rebind(ranks, ranks_expr);
    });

    // ranks.count()
    b.action(ranks, ActionKind::Count);

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "wikipedia-links",
        power_law_edges_text(n_vertices, n_edges, URL_LEN, seed),
    );
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;
    use sparklang::VarId;

    #[test]
    fn tags_match_figure_2() {
        let w = pagerank(100, 400, 3, 1);
        let tags = infer_tags(&w.program);
        let (links, ranks, contribs) = (VarId(0), VarId(1), VarId(2));
        assert_eq!(tags.tag(links), Some(MemoryTag::Dram));
        assert_eq!(tags.tag(contribs), Some(MemoryTag::Nvm));
        assert_eq!(tags.tag(ranks), Some(MemoryTag::Nvm));
    }

    #[test]
    fn dataset_is_registered() {
        let w = pagerank(100, 400, 3, 1);
        assert_eq!(w.data.records("wikipedia-links").len(), 400);
    }
}
