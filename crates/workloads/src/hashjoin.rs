//! Section 4.3's applicability example: a Hadoop-style HashJoin managed
//! directly through Panthera's two public runtime APIs, with no Spark
//! driver program and no static analysis.
//!
//! A SQL-engine building block: the *build* table is loaded entirely into
//! memory and probed by every map worker — long-lived and frequently
//! accessed, so it is **pretenured in DRAM** (API 1). The *probe* table is
//! streamed through the young generation partition by partition and dies
//! there. A third, optional *archive* table has an unpredictable pattern,
//! so it is **monitored** (API 2) and left to the major GC's dynamic
//! re-assessment.

use mheap::{Key, MemTag, ObjId, ObjKind, Payload, RootSet};
use panthera::{MemoryMode, PantheraRuntime, RunReport, SystemConfig};
use sparklet::MemoryRuntime;
use std::collections::HashMap;

/// Synthetic input tables for the join.
#[derive(Debug, Clone)]
pub struct HashJoinInput {
    /// The in-memory build side: `(key, value)` rows.
    pub build: Vec<Payload>,
    /// The streamed probe side, already partitioned across map workers.
    pub probe_partitions: Vec<Vec<Payload>>,
}

/// Generate a build table of `build_rows` rows and `map_workers` probe
/// partitions of `probe_rows_each` rows, with ~50% key hit rate.
pub fn hashjoin_input(
    build_rows: usize,
    map_workers: usize,
    probe_rows_each: usize,
    seed: u64,
) -> HashJoinInput {
    let mut x = seed | 1;
    let mut next = move || {
        // SplitMix64 step — deterministic, dependency-free.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let build = (0..build_rows)
        .map(|k| Payload::keyed(k as i64, Payload::Long(next() as i64 & 0xffff)))
        .collect();
    let probe_partitions = (0..map_workers)
        .map(|_| {
            (0..probe_rows_each)
                .map(|_| {
                    let k = (next() % (2 * build_rows as u64)) as i64;
                    Payload::keyed(k, Payload::Long(next() as i64 & 0xffff))
                })
                .collect()
        })
        .collect();
    HashJoinInput {
        build,
        probe_partitions,
    }
}

/// Outcome of a HashJoin run.
#[derive(Debug)]
pub struct HashJoinOutcome {
    /// Matched `(key, (build, probe))` output rows.
    pub matches: u64,
    /// The run's measurements.
    pub report: RunReport,
}

/// Run the HashJoin under the given mode, driving the runtime APIs
/// directly (API 1 for the build table, API 2 for an archive table).
///
/// # Panics
///
/// Panics if the configuration is invalid for the chosen mode.
pub fn run_hashjoin(input: &HashJoinInput, config: &SystemConfig) -> HashJoinOutcome {
    let mut rt = PantheraRuntime::new(config).expect("valid config");
    let mut roots = RootSet::new();
    let semantic = config.mode == MemoryMode::Panthera;

    // --- load the build table -------------------------------------------
    const BUILD: u32 = 1;
    let build_array = if semantic {
        // API 1: the developer knows this table is hot.
        rt.api_pretenure(&roots, BUILD, input.build.len().max(1), MemTag::Dram)
    } else {
        rt.alloc_rdd_array(&roots, BUILD, input.build.len().max(1), None)
    };
    roots.push(build_array);
    let mut hash: HashMap<Key, (ObjId, Payload)> = HashMap::new();
    for row in &input.build {
        let obj = rt.alloc_record(&roots, ObjKind::Tuple, row.clone());
        rt.heap_mut().push_ref(build_array, obj);
        hash.insert(row.shuffle_key(), (obj, row.clone()));
    }
    // The table is long-lived: let it settle into the old generation
    // (eagerly under Panthera, by aging under the baselines).
    for _ in 0..3 {
        rt.minor_gc(&roots);
    }

    // --- probe, one map worker at a time ---------------------------------
    let mut matches = 0u64;
    for partition in &input.probe_partitions {
        roots.push_scope();
        // One monitored method call per worker's scan of the shared table
        // (API 2) — not per row; monitoring is method-level (Section 4.2.2).
        if semantic {
            rt.api_monitor(BUILD);
        }
        for row in partition {
            // Each probe row is a short-lived young object...
            rt.alloc_record(&roots, ObjKind::Tuple, row.clone());
            // ...that probes the shared build table.
            if let Some((obj, _)) = hash.get(&row.shuffle_key()) {
                // Touch the matched build row where it physically lives.
                rt.heap_mut().read_object(*obj);
                matches += 1;
            }
        }
        roots.pop_scope();
        rt.stage_boundary(&roots);
    }

    let report = RunReport::collect(
        "hashjoin",
        config.mode.label(),
        rt.heap(),
        rt.gc(),
        sparklet::ExecStats::default(),
        rt.monitored_calls(),
    );
    HashJoinOutcome { matches, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheap::SpaceId;
    use panthera::SIM_GB;

    fn input() -> HashJoinInput {
        hashjoin_input(512, 4, 1_024, 9)
    }

    #[test]
    fn matches_are_mode_independent() {
        let input = input();
        let a = run_hashjoin(
            &input,
            &SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0),
        );
        let b = run_hashjoin(
            &input,
            &SystemConfig::new(MemoryMode::Unmanaged, 8 * SIM_GB, 1.0 / 3.0),
        );
        assert_eq!(a.matches, b.matches);
        // ~50% of probes hit the half-range key space.
        let probes = 4 * 1_024;
        assert!((probes / 3..probes).contains(&(a.matches as usize)));
    }

    #[test]
    fn build_table_probes_hit_dram_under_panthera() {
        let input = input();
        let cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
        let out = run_hashjoin(&input, &cfg);
        assert!(out.report.monitored_calls > 0, "API 2 counted probes");
        // The build table was pretenured in DRAM, so a hybrid machine's
        // probe traffic is DRAM-dominated.
        assert!(out.report.device_bytes[0] > 10 * out.report.device_bytes[1]);
    }

    #[test]
    fn kingsguard_nursery_pays_nvm_probes() {
        let input = input();
        let kn = run_hashjoin(
            &input,
            &SystemConfig::new(MemoryMode::KingsguardNursery, 8 * SIM_GB, 1.0 / 3.0),
        );
        let pan = run_hashjoin(
            &input,
            &SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0),
        );
        assert!(
            kn.report.elapsed_s > pan.report.elapsed_s,
            "KN probes the build table in NVM and pays latency: {} vs {}",
            kn.report.elapsed_s,
            pan.report.elapsed_s
        );
    }

    #[test]
    fn pretenured_build_array_is_in_dram_old_gen() {
        let cfg = SystemConfig::new(MemoryMode::Panthera, 8 * SIM_GB, 1.0 / 3.0);
        let mut rt = PantheraRuntime::new(&cfg).unwrap();
        let roots = RootSet::new();
        let arr = rt.api_pretenure(&roots, 7, 256, MemTag::Dram);
        assert_eq!(
            rt.heap().obj(arr).space,
            SpaceId::Old(rt.heap().old_dram().unwrap())
        );
    }
}
