//! GraphX-style Pregel workloads: Connected Components and Single-Source
//! Shortest Paths.
//!
//! GraphX's Pregel loop persists a fresh graph every superstep and
//! unpersists the previous one. The paper (Section 5.5) observes that its
//! analysis, lacking `unpersist` support, marks both old and new graph
//! RDDs as hot (DRAM) — the dynamic re-assessment at major GCs then
//! demotes the stale instances to NVM. We reproduce that structure: the
//! label/distance RDDs are persisted per superstep, unpersisted an
//! iteration later, and read afterwards by a result-inspection loop (which
//! is what makes the static analysis call them hot).

use crate::data::{symmetric_edges, weighted_edges};
use crate::BuiltWorkload;
use mheap::Payload;
use sparklang::{ActionKind, Expr, ProgramBuilder, StorageLevel, VarId};
use sparklet::DataRegistry;

const INF: f64 = f64::MAX / 4.0;

/// The shared Pregel skeleton: `state = (vertex, value)` records updated
/// each superstep by `state.union(messages).reduceByKey(combine)`.
fn pregel(
    b: &mut ProgramBuilder,
    init_state: Expr,
    msgs_of: impl Fn(&mut ProgramBuilder, VarId) -> Expr,
    combine: sparklang::FuncId,
    supersteps: u32,
) -> VarId {
    let state = b.bind("state", init_state);
    b.persist(state, StorageLevel::MemoryOnly);
    // GraphX's Pregel unpersists old graphs *lazily* (non-blocking), so the
    // graph from superstep k-1 is still cached while superstep k+1 runs —
    // exactly the stale-but-hot-tagged RDDs Section 5.5 reports being
    // demoted to NVM by the major GC's re-assessment.
    let prev = b.bind("prev", b.var(state));
    b.loop_n(supersteps, |b| {
        let msgs = msgs_of(b, state);
        let new_state = b.var(state).union(msgs).reduce_by_key(combine);
        let next = b.bind("next", new_state);
        b.persist(next, StorageLevel::MemoryOnly);
        b.unpersist(prev);
        b.rebind(prev, b.var(state));
        b.rebind(state, b.var(next));
    });
    // Post-processing reads the final graph repeatedly — this is what the
    // static analysis keys the DRAM tag on.
    b.loop_n(2, |b| {
        b.action(state, ActionKind::Count);
        b.action(VarId(state.0 + 2), ActionKind::Count);
    });
    // The final result set, retrieved to the driver.
    b.action(state, ActionKind::Collect);
    state
}

/// GraphX Connected Components: propagate minimum vertex id over
/// symmetric edges.
pub fn connected_components(
    n_vertices: usize,
    n_edges: usize,
    supersteps: u32,
    seed: u64,
) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("graphx-cc");

    let self_label = b.map_fn(|r| {
        // Vertex id -> (id, id).
        let v = r.as_long().expect("vertex id");
        Payload::keyed(v, Payload::Long(v))
    });
    let endpoints = b.flat_map_fn(|r| {
        let (s, d) = r.as_pair().expect("edge");
        vec![s.clone(), d.clone()]
    });
    // (src, (dst, label)) -> (dst, label): send my label to my neighbour.
    let to_msg = b.map_fn(|r| {
        let (dst, label) = r.as_pair().expect("(dst, label)");
        Payload::pair(dst.clone(), label.clone())
    });
    let min_label = b.reduce_fn(|a, c| {
        Payload::Long(a.as_long().expect("label").min(c.as_long().expect("label")))
    });

    let src = b.source("wikipedia-graph");
    let edges = b.bind("edges", src);
    b.persist(edges, StorageLevel::MemoryOnly);
    let vertices_expr = b.var(edges).flat_map(endpoints).distinct().map(self_label);

    pregel(
        &mut b,
        vertices_expr,
        |b, state| b.var(edges).join(b.var(state)).values().map(to_msg),
        min_label,
        supersteps,
    );

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "wikipedia-graph",
        symmetric_edges(n_vertices, n_edges, seed),
    );
    BuiltWorkload { program, fns, data }
}

/// GraphX Single-Source Shortest Paths from vertex 0 over weighted edges.
pub fn sssp(n_vertices: usize, n_edges: usize, supersteps: u32, seed: u64) -> BuiltWorkload {
    let mut b = ProgramBuilder::new("graphx-sssp");

    let init_dist = b.map_fn(|r| {
        let v = r.as_long().expect("vertex id");
        Payload::keyed(v, Payload::Double(if v == 0 { 0.0 } else { INF }))
    });
    let endpoints = b.flat_map_fn(|r| {
        let (s, dw) = r.as_pair().expect("edge");
        let (d, _) = dw.as_pair().expect("(dst, w)");
        vec![s.clone(), d.clone()]
    });
    // (src, ((dst, w), dist)) -> (dst, dist + w): relax the edge.
    let relax = b.map_fn(|r| {
        let (dw, dist) = r.as_pair().expect("((dst, w), dist)");
        let (dst, w) = dw.as_pair().expect("(dst, w)");
        let d = dist.as_double().expect("dist");
        let w = w.as_double().expect("weight");
        Payload::pair(
            dst.clone(),
            Payload::Double(if d >= INF { INF } else { d + w }),
        )
    });
    let min_dist = b.reduce_fn(|a, c| {
        Payload::Double(a.as_double().expect("d").min(c.as_double().expect("d")))
    });

    let src = b.source("wikipedia-weighted");
    let edges = b.bind("edges", src);
    b.persist(edges, StorageLevel::MemoryOnly);
    let vertices_expr = b.var(edges).flat_map(endpoints).distinct().map(init_dist);

    pregel(
        &mut b,
        vertices_expr,
        |b, state| b.var(edges).join(b.var(state)).values().map(relax),
        min_dist,
        supersteps,
    );

    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register(
        "wikipedia-weighted",
        weighted_edges(n_vertices, n_edges, seed),
    );
    BuiltWorkload { program, fns, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use panthera_analysis::infer_tags;
    use sparklang::ast::MemoryTag;

    #[test]
    fn graph_rdds_are_tagged_hot() {
        // Section 5.5: both old and new graph RDDs end up DRAM-tagged;
        // dynamic migration later demotes the stale ones.
        let w = connected_components(50, 100, 3, 1);
        let tags = infer_tags(&w.program);
        // edges(0), state(1), prev(2), next(3)
        assert_eq!(tags.tag(sparklang::VarId(0)), Some(MemoryTag::Dram));
        assert_eq!(tags.tag(sparklang::VarId(1)), Some(MemoryTag::Dram));
        assert_eq!(tags.tag(sparklang::VarId(3)), Some(MemoryTag::Dram));
    }

    #[test]
    fn sssp_has_same_shape() {
        let w = sssp(50, 100, 3, 1);
        let tags = infer_tags(&w.program);
        assert_eq!(tags.tag(sparklang::VarId(1)), Some(MemoryTag::Dram));
    }
}
