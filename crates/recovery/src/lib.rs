//! Fault injection and recovery for the Panthera cluster runtime.
//!
//! Everything here is deterministic: a [`FaultPlan`] is a *pure function
//! of a seed* and is keyed entirely to simulation structure — barrier
//! indices, gather ordinals, materialization sequence numbers — never to
//! wall-clock time or host scheduling. Replaying the same plan against
//! the same program therefore injects the same faults at the same virtual
//! instants on every run and under every host-thread budget, which is
//! what lets the test suite demand *bit-identical* reports from
//! fault-injected runs.
//!
//! Three fault classes are modeled (DESIGN.md §9):
//!
//! - **Executor crashes** ([`CrashPoint`]): an executor unwinds at a
//!   statement-barrier arrival. Barriers are perfect cut points — every
//!   collective before the barrier has completed, and none after it has
//!   been entered — so a restarted executor can replay the program from
//!   the top, re-reading completed collectives from the exchange cache.
//! - **Exchange message loss** ([`LossPoint`]): a gather contribution is
//!   "lost" and retransmitted; the sender's virtual clock is charged a
//!   retransmit penalty. Values are never corrupted — loss costs time,
//!   not correctness.
//! - **Transient allocation failures** ([`AllocFaultPoint`]): a
//!   materialization's first allocation attempt fails and is retried
//!   after a fixed virtual-time backoff.
//!
//! The crate also provides [`NvmCheckpointStore`], the NVM-resident
//! durable partition store behind `RecoveryPolicy::CheckpointEvery(n)`:
//! it survives executor heap teardown, so a restarted executor restores
//! checkpointed partitions instead of recomputing their lineage.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sparklet::{BeginOutcome, CheckpointEntry, CheckpointStore, DepositJournal, JournalOp};
use std::collections::HashMap;
use std::sync::Mutex;

/// Which collective a [`LossPoint`] targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GatherKind {
    /// A shuffle all-gather (keyed by the shuffled RDD's id).
    Shuffle,
    /// An action all-gather (keyed by the action sequence number).
    Action,
}

/// An injected executor crash: executor `exec` unwinds when it arrives
/// at statement barrier `barrier` (before depositing its clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CrashPoint {
    /// The executor that crashes.
    pub exec: u16,
    /// The statement-barrier index at which it crashes.
    pub barrier: u64,
}

/// An injected executor crash keyed to *virtual time* rather than a
/// barrier ordinal: executor `exec` unwinds at the first engine-side
/// fault probe whose simulated clock has reached `at_ns`. Probes sit at
/// every interruptible point — partition materializations, barrier
/// entries, either side of a gather deposit, and inside a checkpoint
/// save — so a virtual-time crash can land mid-stage, mid-deposit,
/// mid-checkpoint, or during a prior recovery's replay.
///
/// Because each executor's clock sequence is a pure function of the
/// program (the cluster is a Kahn network), "first probe at or after
/// `at_ns`" is a deterministic point: the same plan fires at the same
/// probe on every run and under every host-thread budget.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct VCrashPoint {
    /// The executor that crashes.
    pub exec: u16,
    /// The virtual time at (or after) which the crash fires.
    pub at_ns: f64,
}

/// An injected message loss: executor `exec`'s `ordinal`-th gather of
/// kind `kind` (counting per executor per kind, from zero, across
/// restarts) loses its contribution once and pays a retransmit penalty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LossPoint {
    /// The executor whose contribution is lost.
    pub exec: u16,
    /// Which collective family the loss hits.
    pub kind: GatherKind,
    /// Zero-based per-executor, per-kind gather ordinal.
    pub ordinal: u64,
}

/// An injected transient allocation failure: executor `exec`'s
/// `materialization`-th partition materialization (a monotone sequence
/// spanning restarts) fails its first allocation attempt and retries
/// after a fixed virtual-time backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocFaultPoint {
    /// The executor that experiences the fault.
    pub exec: u16,
    /// Zero-based materialization sequence number on that executor.
    pub materialization: u64,
}

/// Bounds for [`FaultPlan::generate`]: how much of each fault class a
/// randomly drawn plan may contain, plus the (deterministic) virtual-time
/// penalties each fault charges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Exact number of executor crashes to inject (deduplicated crash
    /// points may make the realized count smaller).
    pub crashes: u32,
    /// Lowest barrier index eligible for a crash (inclusive).
    pub barrier_lo: u64,
    /// Highest barrier index eligible for a crash (inclusive).
    pub barrier_hi: u64,
    /// Maximum number of message-loss points to draw.
    pub max_losses: u32,
    /// Maximum number of transient allocation faults to draw.
    pub max_alloc_faults: u32,
    /// Exact number of virtual-time crash points to draw (0 — the
    /// default — keeps the plan barrier-only, so pre-existing seeds
    /// reproduce the exact plans they always did).
    pub vcrashes: u32,
    /// Lowest virtual time eligible for a [`VCrashPoint`] (inclusive).
    pub vtime_lo_ns: f64,
    /// Highest virtual time eligible for a [`VCrashPoint`] (exclusive).
    pub vtime_hi_ns: f64,
    /// Virtual time to bring a replacement executor up (charged once per
    /// crash, on top of replaying at the crash-time clock offset).
    pub restart_penalty_ns: f64,
    /// Virtual time one retransmitted gather contribution costs.
    pub retransmit_penalty_ns: f64,
    /// Virtual-time backoff before a failed allocation is retried.
    pub alloc_retry_ns: f64,
    /// Whether the driver restarts crashed executors. `false` turns an
    /// injected crash into a run-fatal error (used to test the poisoned
    /// exchange path).
    pub recover: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crashes: 1,
            barrier_lo: 1,
            barrier_hi: 8,
            max_losses: 2,
            max_alloc_faults: 2,
            vcrashes: 0,
            vtime_lo_ns: 0.0,
            vtime_hi_ns: 0.0,
            restart_penalty_ns: 5.0e6,
            retransmit_penalty_ns: 2.0e5,
            alloc_retry_ns: 1.0e5,
            recover: true,
        }
    }
}

/// A complete, deterministic fault schedule for one cluster run.
///
/// The plan is data, not behavior: the cluster runtime consults it at
/// well-defined simulation points (barrier arrivals, gather entries,
/// materializations) and injects exactly the listed faults. Two runs of
/// the same program with the same plan fault — and recover — identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Executor crashes, fired at barrier arrival.
    pub crashes: Vec<CrashPoint>,
    /// Executor crashes keyed to virtual time, fired at the first engine
    /// fault probe whose clock reaches the point (DESIGN.md §12).
    pub vcrashes: Vec<VCrashPoint>,
    /// Gather-contribution losses, each charged a retransmit penalty.
    pub losses: Vec<LossPoint>,
    /// Transient allocation failures, each charged a retry backoff.
    pub alloc_faults: Vec<AllocFaultPoint>,
    /// Virtual time charged to bring a restarted executor up.
    pub restart_penalty_ns: f64,
    /// Virtual time charged per lost gather contribution.
    pub retransmit_penalty_ns: f64,
    /// Virtual time charged per failed allocation attempt.
    pub alloc_retry_ns: f64,
    /// Whether crashed executors are restarted (vs. failing the run).
    pub recover: bool,
}

impl FaultPlan {
    /// The empty plan: no faults, recovery enabled. A run under the empty
    /// plan is bit-identical to a run without fault machinery at all.
    pub fn none() -> Self {
        FaultPlan {
            crashes: Vec::new(),
            vcrashes: Vec::new(),
            losses: Vec::new(),
            alloc_faults: Vec::new(),
            restart_penalty_ns: 0.0,
            retransmit_penalty_ns: 0.0,
            alloc_retry_ns: 0.0,
            recover: true,
        }
    }

    /// A plan with exactly one crash and nothing else, with default
    /// penalties. The workhorse for targeted tests.
    pub fn single_crash(exec: u16, barrier: u64) -> Self {
        let spec = FaultSpec::default();
        FaultPlan {
            crashes: vec![CrashPoint { exec, barrier }],
            ..FaultPlan::with_defaults(spec)
        }
    }

    /// A plan with exactly one virtual-time crash and nothing else, with
    /// default penalties. The workhorse for crash-anywhere tests.
    pub fn crash_at(exec: u16, at_ns: f64) -> Self {
        FaultPlan {
            vcrashes: vec![VCrashPoint { exec, at_ns }],
            ..FaultPlan::with_defaults(FaultSpec::default())
        }
    }

    /// An empty plan carrying `spec`'s penalties and recovery switch.
    fn with_defaults(spec: FaultSpec) -> Self {
        FaultPlan {
            restart_penalty_ns: spec.restart_penalty_ns,
            retransmit_penalty_ns: spec.retransmit_penalty_ns,
            alloc_retry_ns: spec.alloc_retry_ns,
            recover: spec.recover,
            ..FaultPlan::none()
        }
    }

    /// Draw a random plan within `spec`'s bounds, fully determined by
    /// `seed` and `n_exec`. Crash points are deduplicated (two crashes of
    /// the same executor at the same barrier would be one crash) and
    /// sorted, so the plan is canonical: equal seeds give equal plans.
    pub fn generate(seed: u64, n_exec: u16, spec: FaultSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = u64::from(n_exec.max(1));
        let mut crashes = Vec::new();
        for _ in 0..spec.crashes {
            let exec = rng.random_range(0..n) as u16;
            let barrier = rng.random_range(spec.barrier_lo..spec.barrier_hi + 1);
            let p = CrashPoint { exec, barrier };
            if !crashes.contains(&p) {
                crashes.push(p);
            }
        }
        crashes.sort();
        let n_losses = rng.random_range(0..u64::from(spec.max_losses) + 1);
        let mut losses = Vec::new();
        for _ in 0..n_losses {
            let exec = rng.random_range(0..n) as u16;
            let kind = if rng.random::<bool>() {
                GatherKind::Shuffle
            } else {
                GatherKind::Action
            };
            let ordinal = rng.random_range(0..6u64);
            let p = LossPoint {
                exec,
                kind,
                ordinal,
            };
            if !losses.contains(&p) {
                losses.push(p);
            }
        }
        losses.sort();
        let n_alloc = rng.random_range(0..u64::from(spec.max_alloc_faults) + 1);
        let mut alloc_faults = Vec::new();
        for _ in 0..n_alloc {
            let exec = rng.random_range(0..n) as u16;
            let materialization = rng.random_range(0..12u64);
            let p = AllocFaultPoint {
                exec,
                materialization,
            };
            if !alloc_faults.contains(&p) {
                alloc_faults.push(p);
            }
        }
        alloc_faults.sort();
        // Virtual-time crash points are drawn *after* every legacy draw,
        // so plans generated by pre-crash-anywhere seeds (vcrashes == 0)
        // consume the identical random stream and reproduce bit-for-bit.
        let mut vcrashes = Vec::new();
        if spec.vcrashes > 0 && spec.vtime_hi_ns > spec.vtime_lo_ns {
            for _ in 0..spec.vcrashes {
                let exec = rng.random_range(0..n) as u16;
                let at_ns = rng.random_range(spec.vtime_lo_ns..spec.vtime_hi_ns);
                vcrashes.push(VCrashPoint { exec, at_ns });
            }
            vcrashes.sort_by(|a, b| {
                (a.exec, a.at_ns)
                    .partial_cmp(&(b.exec, b.at_ns))
                    .expect("crash times are finite")
            });
        }
        FaultPlan {
            crashes,
            vcrashes,
            losses,
            alloc_faults,
            restart_penalty_ns: spec.restart_penalty_ns,
            retransmit_penalty_ns: spec.retransmit_penalty_ns,
            alloc_retry_ns: spec.alloc_retry_ns,
            recover: spec.recover,
        }
    }

    /// True if the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.vcrashes.is_empty()
            && self.losses.is_empty()
            && self.alloc_faults.is_empty()
    }
}

/// The NVM-resident checkpoint store.
///
/// Checkpointed partitions live *outside* any executor heap, modeling a
/// durable region of non-volatile memory: they survive executor crashes
/// and heap teardown, and a restarted executor restores from them
/// instead of recomputing lineage. Entries are keyed by
/// `(rdd id, executor)` so each executor reads back exactly the
/// partitions it owns — restores never race across executors, keeping
/// host-order out of the simulation.
///
/// `save` is idempotent with first-write-wins semantics: a replaying
/// executor re-materializing an already-checkpointed RDD does not write
/// (or get charged) twice, and the stored bytes are the ones the
/// pre-crash attempt produced — which the equivalence tests then prove
/// are bit-identical to a fault-free run's.
#[derive(Debug, Default)]
pub struct NvmCheckpointStore {
    inner: Mutex<HashMap<(u32, u16), CheckpointEntry>>,
    journal: Mutex<HashMap<(u16, JournalOp, u64), JournalRecord>>,
}

/// One durable intent record in the store's deposit journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct JournalRecord {
    /// `false` between `begin` and `commit` — the torn window.
    committed: bool,
    /// Structural digest of the guarded operation's payload.
    digest: u64,
    /// Modelled bytes of the guarded payload.
    bytes: u64,
}

impl NvmCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of `(rdd, executor)` entries currently resident.
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("checkpoint store lock").len()
    }

    /// Number of journal intent records (committed or pending).
    pub fn journal_entries(&self) -> usize {
        self.journal.lock().expect("journal lock").len()
    }

    /// Number of journal records currently *pending* — left between
    /// `begin` and `commit`. Non-zero after a run only if an executor
    /// died inside a torn window and was never restarted.
    pub fn journal_pending(&self) -> usize {
        self.journal
            .lock()
            .expect("journal lock")
            .values()
            .filter(|r| !r.committed)
            .count()
    }
}

impl DepositJournal for NvmCheckpointStore {
    fn begin(&self, exec: u16, op: JournalOp, key: u64, digest: u64, bytes: u64) -> BeginOutcome {
        let mut journal = self.journal.lock().expect("journal lock");
        match journal.get(&(exec, op, key)) {
            None => {
                journal.insert(
                    (exec, op, key),
                    JournalRecord {
                        committed: false,
                        digest,
                        bytes,
                    },
                );
                BeginOutcome::Fresh
            }
            Some(rec) => {
                assert_eq!(
                    rec.digest, digest,
                    "journal digest mismatch for exec {exec} {op:?} key {key}: \
                     replay re-issued a different payload than it journaled \
                     ({} vs {} bytes) — replay determinism is broken",
                    rec.bytes, bytes
                );
                if rec.committed {
                    BeginOutcome::Replay
                } else {
                    BeginOutcome::Torn
                }
            }
        }
    }

    fn commit(&self, exec: u16, op: JournalOp, key: u64) {
        let mut journal = self.journal.lock().expect("journal lock");
        let rec = journal
            .get_mut(&(exec, op, key))
            .expect("commit without begin");
        rec.committed = true;
    }
}

impl CheckpointStore for NvmCheckpointStore {
    fn save(&self, rdd: u32, exec: u16, entry: CheckpointEntry) -> bool {
        let mut map = self.inner.lock().expect("checkpoint store lock");
        if map.contains_key(&(rdd, exec)) {
            return false;
        }
        map.insert((rdd, exec), entry);
        true
    }

    fn load(&self, rdd: u32, exec: u16) -> Option<CheckpointEntry> {
        self.inner
            .lock()
            .expect("checkpoint store lock")
            .get(&(rdd, exec))
            .cloned()
    }

    fn resident_bytes(&self) -> u64 {
        self.inner
            .lock()
            .expect("checkpoint store lock")
            .values()
            .map(|e| e.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let spec = FaultSpec {
            crashes: 2,
            max_losses: 3,
            max_alloc_faults: 3,
            ..FaultSpec::default()
        };
        let a = FaultPlan::generate(42, 4, spec);
        let b = FaultPlan::generate(42, 4, spec);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 4, spec);
        // Different seeds almost surely differ somewhere; at minimum the
        // plan must stay within spec bounds.
        for p in &c.crashes {
            assert!(p.exec < 4);
            assert!((spec.barrier_lo..=spec.barrier_hi).contains(&p.barrier));
        }
        assert!(c.losses.len() <= spec.max_losses as usize);
        assert!(c.alloc_faults.len() <= spec.max_alloc_faults as usize);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::single_crash(0, 1).is_empty());
        assert!(!FaultPlan::crash_at(0, 1.0e6).is_empty());
    }

    #[test]
    fn vcrash_draws_do_not_perturb_legacy_plans() {
        let legacy = FaultSpec {
            crashes: 2,
            max_losses: 3,
            max_alloc_faults: 3,
            ..FaultSpec::default()
        };
        let extended = FaultSpec {
            vcrashes: 2,
            vtime_lo_ns: 0.0,
            vtime_hi_ns: 1.0e9,
            ..legacy
        };
        let a = FaultPlan::generate(0xC0FFEE, 4, legacy);
        let b = FaultPlan::generate(0xC0FFEE, 4, extended);
        // The virtual-time draws happen after every legacy draw, so the
        // legacy portion of the plan is identical.
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.alloc_faults, b.alloc_faults);
        assert!(a.vcrashes.is_empty());
        assert_eq!(b.vcrashes.len(), 2);
        for p in &b.vcrashes {
            assert!(p.exec < 4);
            assert!((0.0..1.0e9).contains(&p.at_ns));
        }
    }

    #[test]
    fn journal_begin_commit_replay_torn() {
        let store = NvmCheckpointStore::new();
        // First issue: fresh, then committed.
        assert_eq!(
            store.begin(0, JournalOp::ShuffleDeposit, 7, 0xABCD, 64),
            BeginOutcome::Fresh
        );
        assert_eq!(store.journal_pending(), 1);
        store.commit(0, JournalOp::ShuffleDeposit, 7);
        assert_eq!(store.journal_pending(), 0);
        // Replay with the same digest is a validated no-op.
        assert_eq!(
            store.begin(0, JournalOp::ShuffleDeposit, 7, 0xABCD, 64),
            BeginOutcome::Replay
        );
        // A crash between begin and commit leaves a torn entry the next
        // incarnation detects and rolls forward.
        assert_eq!(
            store.begin(1, JournalOp::CheckpointSave, 3, 0x1111, 32),
            BeginOutcome::Fresh
        );
        assert_eq!(
            store.begin(1, JournalOp::CheckpointSave, 3, 0x1111, 32),
            BeginOutcome::Torn
        );
        store.commit(1, JournalOp::CheckpointSave, 3);
        assert_eq!(
            store.begin(1, JournalOp::CheckpointSave, 3, 0x1111, 32),
            BeginOutcome::Replay
        );
        // Keys are independent across executors and operations.
        assert_eq!(
            store.begin(1, JournalOp::ShuffleDeposit, 7, 0x9999, 64),
            BeginOutcome::Fresh
        );
        assert_eq!(store.journal_entries(), 3);
    }

    #[test]
    #[should_panic(expected = "journal digest mismatch")]
    fn journal_digest_mismatch_panics() {
        let store = NvmCheckpointStore::new();
        store.begin(0, JournalOp::ActionDeposit, 1, 0xAAAA, 8);
        store.commit(0, JournalOp::ActionDeposit, 1);
        store.begin(0, JournalOp::ActionDeposit, 1, 0xBBBB, 8);
    }

    #[test]
    fn store_is_first_write_wins() {
        let store = NvmCheckpointStore::new();
        let entry = CheckpointEntry {
            parts: Vec::new(),
            global_parts: 4,
            bytes: 128,
            tag: None,
        };
        assert!(store.save(7, 0, entry.clone()));
        assert!(!store.save(
            7,
            0,
            CheckpointEntry {
                bytes: 999,
                ..entry.clone()
            }
        ));
        assert_eq!(store.load(7, 0).unwrap().bytes, 128);
        assert!(store.load(7, 1).is_none());
        assert_eq!(store.resident_bytes(), 128);
        assert_eq!(store.entries(), 1);
    }
}
