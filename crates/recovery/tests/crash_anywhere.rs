//! PR 8 acceptance: executors may crash *anywhere* in virtual time — not
//! just at statement barriers — and the run still ends with results
//! bit-identical to the fault-free run.
//!
//! 1. A sweep of 200 seeded plans with crash points drawn uniformly over
//!    the fault-free run's virtual duration (one to three points per
//!    plan, so some land inside an open recovery window) preserves
//!    results under both recovery policies, and exercises both journal
//!    paths: committed entries re-validated as no-ops and torn entries
//!    rolled forward.
//! 2. A deliberately replayed committed journal entry is a provable
//!    no-op: the replaying incarnation re-issues its deposits, the
//!    journal digest-validates them, and `journal_noops` says so.
//! 3. Nested faults (a crash during a prior recovery) count once per
//!    physical event in `RecoveryStats`.
//! 4. For a fixed random-point plan, the merged report and every
//!    per-executor sub-report are bit-identical across host-thread
//!    budgets.

use panthera::{MemoryMode, RecoveryPolicy, SystemConfig, SIM_GB};
use panthera_cluster::{run_cluster_faulted, ClusterOutcome, FaultPlan, FaultSpec, VCrashPoint};
use proptest::prelude::*;
use sparklet::{ActionResult, EngineConfig};
use workloads::{build_workload, WorkloadId};

const SCALE: f64 = 0.03;
const DATA_SEED: u64 = 11;
const EXECUTORS: u16 = 2;

fn cluster_config(policy: RecoveryPolicy) -> SystemConfig {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = EXECUTORS;
    cfg.recovery = policy;
    cfg
}

fn run_with_plan(policy: RecoveryPolicy, host_threads: usize, plan: &FaultPlan) -> ClusterOutcome {
    run_cluster_faulted(
        || {
            let w = build_workload(WorkloadId::Tc, SCALE, DATA_SEED);
            (w.program, w.fns, w.data)
        },
        &cluster_config(policy),
        EngineConfig::default(),
        host_threads,
        plan,
    )
    .expect("valid cluster config")
}

fn assert_results_eq(a: &[(String, ActionResult)], b: &[(String, ActionResult)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: action count");
    for ((av, ar), (bv, br)) in a.iter().zip(b.iter()) {
        assert_eq!(av, bv, "{what}: action order");
        assert_eq!(ar, br, "{what}: {av}");
    }
}

/// The fault-free outcome and its virtual duration in nanoseconds — the
/// window random crash points are drawn from.
fn fault_free(policy: RecoveryPolicy) -> (ClusterOutcome, f64) {
    let baseline = run_with_plan(policy, usize::from(EXECUTORS), &FaultPlan::none());
    let horizon_ns = baseline.report.elapsed_s * 1e9;
    (baseline, horizon_ns)
}

#[test]
fn two_hundred_random_point_crashes_preserve_results() {
    let mut fired = 0u64;
    let mut noops = 0u64;
    let mut torn = 0u64;
    let mut nested = 0u64;
    for policy in [
        RecoveryPolicy::Recompute,
        RecoveryPolicy::CheckpointEvery(2),
    ] {
        let (baseline, horizon_ns) = fault_free(policy);
        assert!(horizon_ns > 0.0, "workload must take virtual time");
        for case in 0..100u64 {
            let spec = FaultSpec {
                crashes: 0,
                max_losses: 0,
                max_alloc_faults: 0,
                vcrashes: 1 + (case % 3) as u32,
                vtime_lo_ns: 0.0,
                vtime_hi_ns: horizon_ns,
                ..FaultSpec::default()
            };
            let plan = FaultPlan::generate(0xC4A5_4000 + case, EXECUTORS, spec);
            assert!(!plan.vcrashes.is_empty(), "plan draws its crash points");
            let faulted = run_with_plan(policy, usize::from(EXECUTORS), &plan);
            let what = format!("{policy:?} case {case} plan {:?}", plan.vcrashes);
            assert_results_eq(&faulted.results, &baseline.results, &what);
            let rec = faulted.report.recovery;
            assert!(
                rec.executor_crashes <= plan.vcrashes.len() as u64,
                "{what}: each point fires at most once"
            );
            if rec.executor_crashes > 0 {
                assert!(rec.recovery_s > 0.0, "{what}: recovery takes virtual time");
                assert!(
                    faulted.report.elapsed_s >= baseline.report.elapsed_s,
                    "{what}: recovery must not make the run faster"
                );
            }
            fired += rec.executor_crashes;
            noops += rec.journal_noops;
            torn += rec.journal_torn;
            // Two points on one executor that both fired means the later
            // one interrupted the earlier one's replay window (its clock
            // resumes past both draw positions only via the replay).
            for e in 0..EXECUTORS {
                let planned = plan.vcrashes.iter().filter(|p| p.exec == e).count() as u64;
                if planned >= 2 && rec.executor_crashes >= 2 {
                    nested += 1;
                }
            }
        }
    }
    // The sweep is only meaningful if the injected faults actually bite:
    // most points must fire, replays must re-issue committed deposits,
    // and at least some crashes must land inside a journal window or a
    // prior recovery.
    assert!(fired >= 150, "only {fired}/~300 crash points fired");
    assert!(noops > 0, "no replay ever re-validated a committed deposit");
    assert!(torn > 0, "no crash ever landed between begin and commit");
    assert!(nested > 0, "no crash ever interrupted an open recovery");
}

#[test]
fn replayed_journal_entries_are_validated_noops() {
    let policy = RecoveryPolicy::CheckpointEvery(1);
    let (baseline, horizon_ns) = fault_free(policy);
    // Crash late: plenty of committed shuffle deposits, action deposits,
    // and checkpoint saves exist for the replay to re-issue.
    let plan = FaultPlan::crash_at(1, 0.6 * horizon_ns);
    let faulted = run_with_plan(policy, usize::from(EXECUTORS), &plan);
    assert_results_eq(&faulted.results, &baseline.results, "late vcrash");
    let rec = faulted.report.recovery;
    assert_eq!(rec.executor_crashes, 1, "the planned point fired");
    assert!(
        rec.journal_noops > 0,
        "replay re-issued committed deposits and the journal validated \
         them as no-ops; stats: {rec:?}"
    );
}

#[test]
fn nested_crash_during_recovery_counts_physical_events_once() {
    for policy in [
        RecoveryPolicy::Recompute,
        RecoveryPolicy::CheckpointEvery(2),
    ] {
        let (baseline, horizon_ns) = fault_free(policy);
        // The second point sits just past the first: the restarted
        // incarnation's clock resumes at the crash time plus the restart
        // penalty, so the very first probe of the replay consumes it —
        // a crash during recovery, inside the still-open window.
        let plan = FaultPlan {
            vcrashes: vec![
                VCrashPoint {
                    exec: 1,
                    at_ns: 0.5 * horizon_ns,
                },
                VCrashPoint {
                    exec: 1,
                    at_ns: 0.5 * horizon_ns + 1.0,
                },
            ],
            ..FaultPlan::crash_at(1, 0.5 * horizon_ns)
        };
        let faulted = run_with_plan(policy, usize::from(EXECUTORS), &plan);
        let what = format!("{policy:?} nested");
        assert_results_eq(&faulted.results, &baseline.results, &what);
        let rec = faulted.report.recovery;
        assert_eq!(
            rec.executor_crashes, 2,
            "{what}: one count per physical crash, no double counting"
        );
        assert!(rec.recovery_s > 0.0, "{what}: the window was charged");
        assert!(
            rec.journal_noops > 0,
            "{what}: the replay re-validated committed deposits"
        );
    }
}

#[test]
fn random_point_plan_is_host_thread_invariant() {
    let spec = FaultSpec {
        crashes: 0,
        max_losses: 1,
        max_alloc_faults: 1,
        vcrashes: 2,
        vtime_lo_ns: 0.0,
        vtime_hi_ns: 2.0e9,
        ..FaultSpec::default()
    };
    let plan = FaultPlan::generate(0xD1CE, EXECUTORS, spec);
    assert!(!plan.vcrashes.is_empty());
    for policy in [
        RecoveryPolicy::Recompute,
        RecoveryPolicy::CheckpointEvery(2),
    ] {
        let serial = run_with_plan(policy, 1, &plan);
        let threaded = run_with_plan(policy, usize::from(EXECUTORS), &plan);
        let what = format!("{policy:?}");
        assert_results_eq(&serial.results, &threaded.results, &what);
        assert_eq!(
            serial.report.to_json().to_compact(),
            threaded.report.to_json().to_compact(),
            "{what}: aggregate report must not depend on host threads"
        );
        for (e, (s, t)) in serial
            .per_executor
            .iter()
            .zip(threaded.per_executor.iter())
            .enumerate()
        {
            assert_eq!(
                s.to_json().to_compact(),
                t.to_json().to_compact(),
                "{what}: executor {e} sub-report must not depend on host threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property form of the sweep: any pair of points anywhere in the
    /// run (same executor or different, ordered or not) preserves the
    /// action results exactly.
    #[test]
    fn arbitrary_crash_points_preserve_results(
        frac_a in 0.0f64..1.0,
        frac_b in 0.0f64..1.0,
        exec_a in 0u16..EXECUTORS,
        exec_b in 0u16..EXECUTORS,
    ) {
        thread_local! {
            static BASE: std::cell::OnceCell<(Vec<(String, ActionResult)>, f64)> =
                const { std::cell::OnceCell::new() };
        }
        BASE.with(|base| {
            let (base_results, horizon_ns) = base.get_or_init(|| {
                let (b, h) = fault_free(RecoveryPolicy::Recompute);
                (b.results, h)
            });
            let mut vcrashes = vec![
                VCrashPoint { exec: exec_a, at_ns: frac_a * horizon_ns },
                VCrashPoint { exec: exec_b, at_ns: frac_b * horizon_ns },
            ];
            vcrashes.sort_by(|a, b| {
                (a.exec, a.at_ns)
                    .partial_cmp(&(b.exec, b.at_ns))
                    .expect("finite crash times")
            });
            let plan = FaultPlan { vcrashes, ..FaultPlan::none() };
            let faulted = run_with_plan(
                RecoveryPolicy::Recompute,
                usize::from(EXECUTORS),
                &plan,
            );
            assert_results_eq(&faulted.results, base_results, "proptest vcrash");
        });
    }
}
