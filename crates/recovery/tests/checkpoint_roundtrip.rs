//! Checkpoint snapshot/restore fidelity and recomputation-depth bounds.
//!
//! 1. `Payload -> WirePayload -> NvmCheckpointStore -> Payload` is
//!    bit-identical for arbitrary payload trees: structural equality,
//!    fingerprints, modelled bytes, and interned-text symbols all survive
//!    the round trip, and the memory tag on a snapshot is restored
//!    verbatim.
//! 2. `RecoveryPolicy::CheckpointEvery(n)` bounds the lineage depth a
//!    restarted executor recomputes to fewer than `n` shuffle stages.

use mheap::{Payload, WirePayload};
use panthera::{MemoryMode, RecoveryPolicy, SystemConfig, SIM_GB};
use panthera_cluster::{run_cluster_faulted, ClusterOutcome, FaultPlan, NvmCheckpointStore};
use proptest::prelude::*;
use sparklang::ast::MemoryTag;
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder, StorageLevel};
use sparklet::{CheckpointEntry, CheckpointStore, DataRegistry, EngineConfig, InternTable};

// ---------------------------------------------------------------------------
// Snapshot → restore fidelity.
// ---------------------------------------------------------------------------

fn payload_strategy() -> BoxedStrategy<Payload> {
    let leaf = prop_oneof![
        Just(Payload::Unit),
        any::<i64>().prop_map(Payload::Long),
        any::<i64>().prop_map(|v| Payload::Double(v as f64 / 257.0)),
        (0u64..64, 0u32..40).prop_map(|(sym, len)| Payload::Text { sym, len }),
        prop::collection::vec(any::<i64>(), 0..6).prop_map(Payload::longs),
        prop::collection::vec(any::<i64>(), 0..6)
            .prop_map(|v| Payload::doubles(v.into_iter().map(|x| x as f64).collect())),
        (0u64..4096).prop_map(|len| Payload::Bytes { len }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Payload::pair(a, b)),
            prop::collection::vec(inner, 0..4).prop_map(Payload::list),
        ]
    })
}

fn roundtrip_through_store(records: &[Payload], tag: Option<MemoryTag>) -> CheckpointEntry {
    let store = NvmCheckpointStore::new();
    let wire: Vec<WirePayload> = records.iter().map(WirePayload::from).collect();
    let bytes: u64 = wire.iter().map(WirePayload::model_bytes).sum();
    let entry = CheckpointEntry {
        parts: vec![(0, wire)],
        global_parts: 1,
        bytes,
        tag,
    };
    assert!(store.save(9, 0, entry));
    store.load(9, 0).expect("just saved")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_restore_is_bit_identical(
        records in prop::collection::vec(payload_strategy(), 0..8),
    ) {
        let restored_entry = roundtrip_through_store(&records, None);
        let (_, wire) = &restored_entry.parts[0];
        let restored: Vec<Payload> = wire.iter().map(Payload::from).collect();
        prop_assert_eq!(&restored, &records, "structural equality");
        for (r, o) in restored.iter().zip(records.iter()) {
            prop_assert_eq!(r.fingerprint(), o.fingerprint(), "fingerprint");
            prop_assert_eq!(r.model_bytes(), o.model_bytes(), "modelled bytes");
        }
        let total: u64 = records.iter().map(Payload::model_bytes).sum();
        prop_assert_eq!(restored_entry.bytes, total, "snapshot bytes = payload bytes");
    }
}

#[test]
fn interned_text_dedup_survives_restore() {
    let mut table = InternTable::new();
    let a = table.text("panthera.apache.org");
    let b = table.text("panthera.apache.org"); // same symbol as `a`
    let c = table.text("hybrid-memories.example");
    let records = vec![a.clone(), b.clone(), c.clone()];
    let entry = roundtrip_through_store(&records, None);
    let restored: Vec<Payload> = entry.parts[0].1.iter().map(Payload::from).collect();
    let sym = |p: &Payload| match p {
        Payload::Text { sym, .. } => *sym,
        other => panic!("expected text, got {other:?}"),
    };
    assert_eq!(sym(&restored[0]), sym(&restored[1]), "dedup preserved");
    assert_ne!(
        sym(&restored[0]),
        sym(&restored[2]),
        "distinct stays distinct"
    );
    assert_eq!(sym(&restored[0]), sym(&a), "symbol ids are stable");
    assert_eq!(restored, records);
}

#[test]
fn memory_tag_is_preserved_verbatim() {
    for tag in [None, Some(MemoryTag::Dram), Some(MemoryTag::Nvm)] {
        let entry = roundtrip_through_store(&[Payload::Long(7)], tag);
        assert_eq!(entry.tag, tag, "tag must survive the store");
    }
}

// ---------------------------------------------------------------------------
// Recomputation-depth bounds under CheckpointEvery(n).
// ---------------------------------------------------------------------------

/// A program whose lineage is a chain of `depth` wide (shuffle) stages:
/// src -> distinct -> distinct -> ... -> count, count. Statement barriers:
/// 0 after the bind, 1 after the first count, 2 after the second.
fn chain_program(depth: usize) -> (Program, FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("chain");
    let mut expr = b.source("src");
    for _ in 0..depth {
        expr = expr.distinct();
    }
    let out = b.bind("out", expr);
    b.action(out, ActionKind::Count);
    b.action(out, ActionKind::Count);
    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("src", (0..48).map(|i| Payload::Long(i % 13)).collect());
    (program, fns, data)
}

fn run_chain(policy: RecoveryPolicy, plan: &FaultPlan) -> ClusterOutcome {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = 2;
    cfg.recovery = policy;
    cfg.verify_heap = true;
    run_cluster_faulted(|| chain_program(7), &cfg, EngineConfig::default(), 2, plan)
        .expect("valid cluster config")
}

#[test]
fn checkpoint_interval_bounds_recompute_depth() {
    // Crash executor 1 at barrier 1 — right after the first count forced
    // the whole 7-stage chain. The replay's recompute depth depends on
    // the policy.
    let plan = FaultPlan::single_crash(1, 1);
    let baseline = run_chain(RecoveryPolicy::Recompute, &FaultPlan::none());

    let recompute = run_chain(RecoveryPolicy::Recompute, &plan);
    assert_eq!(recompute.results, baseline.results);
    let rec = recompute.report.recovery;
    assert_eq!(rec.executor_crashes, 1);
    assert_eq!(
        rec.stages_recomputed, 7,
        "lineage-only recovery replays the whole chain"
    );

    for every in [1u32, 2, 3] {
        let out = run_chain(RecoveryPolicy::CheckpointEvery(every), &plan);
        assert_eq!(out.results, baseline.results, "CheckpointEvery({every})");
        let rec = out.report.recovery;
        assert_eq!(rec.executor_crashes, 1, "CheckpointEvery({every})");
        assert!(rec.checkpoint_writes > 0, "CheckpointEvery({every})");
        assert!(
            rec.stages_recomputed < u64::from(every),
            "CheckpointEvery({every}): recompute depth {} must be < {every}",
            rec.stages_recomputed
        );
        assert!(
            rec.partitions_restored > 0,
            "CheckpointEvery({every}): restores happened"
        );
    }
}

#[test]
fn explicit_checkpoint_marking_works_without_auto_policy() {
    // `out.checkpoint()` under RecoveryPolicy::Recompute: the snapshot is
    // written anyway, and the crashed executor restores instead of
    // recomputing any stage.
    let build = || {
        let mut b = ProgramBuilder::new("explicit-checkpoint");
        let expr = b.source("src").distinct().distinct();
        let out = b.bind("out", expr);
        b.checkpoint(out);
        b.action(out, ActionKind::Count);
        b.action(out, ActionKind::Count);
        let (program, fns) = b.finish();
        let mut data = DataRegistry::new();
        data.register("src", (0..30).map(|i| Payload::Long(i % 7)).collect());
        (program, fns, data)
    };
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = 2;
    cfg.verify_heap = true;
    let run = |plan: &FaultPlan| {
        run_cluster_faulted(build, &cfg, EngineConfig::default(), 2, plan)
            .expect("valid cluster config")
    };
    let baseline = run(&FaultPlan::none());
    assert!(
        baseline.report.recovery.checkpoint_writes > 0,
        "explicit mark snapshots even without faults"
    );
    let faulted = run(&FaultPlan::single_crash(0, 2));
    assert_eq!(faulted.results, baseline.results);
    let rec = faulted.report.recovery;
    assert_eq!(rec.executor_crashes, 1);
    assert!(
        rec.partitions_restored > 0,
        "restore from the explicit snapshot"
    );
    assert_eq!(
        rec.stages_recomputed, 0,
        "the checkpointed RDD short-circuits all lineage recompute"
    );
}

// ---------------------------------------------------------------------------
// Off-heap-resident RDDs round-trip through the NVM checkpoint store.
// ---------------------------------------------------------------------------

/// A program whose cached RDD lives in the off-heap H2 region: the
/// `checkpoint()` mark precedes the persist, so the snapshot is written
/// during the persist's shuffle materialization — before the records
/// move off-heap. Restoring after a crash must hand back the off-heap
/// payload bit-identically.
fn offheap_checkpoint_program(wire: &[WirePayload]) -> (Program, FnTable, DataRegistry) {
    let mut b = ProgramBuilder::new("offheap-checkpoint");
    let expr = b.source("src").distinct();
    let out = b.bind("out", expr);
    b.checkpoint(out);
    b.persist(out, StorageLevel::MemoryOnly);
    b.action(out, ActionKind::Collect);
    b.action(out, ActionKind::Count);
    let (program, fns) = b.finish();
    let mut data = DataRegistry::new();
    data.register("src", wire.iter().map(Payload::from).collect());
    (program, fns, data)
}

fn run_offheap_checkpoint(records: &[Payload], offheap: bool, plan: &FaultPlan) -> ClusterOutcome {
    // `Payload` interns text through `Rc` and so isn't `Sync`; ship the
    // records to the executor threads in wire form — the same round trip
    // a real shuffle or checkpoint would take.
    let wire: Vec<WirePayload> = records.iter().map(WirePayload::from).collect();
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = 2;
    cfg.offheap_cache = offheap;
    cfg.verify_heap = true;
    run_cluster_faulted(
        || offheap_checkpoint_program(&wire),
        &cfg,
        EngineConfig::default(),
        2,
        plan,
    )
    .expect("valid cluster config")
}

#[test]
fn offheap_resident_rdd_restores_from_checkpoint() {
    let records: Vec<Payload> = (0..40).map(|i| Payload::Long(i % 11)).collect();
    let heap_baseline = run_offheap_checkpoint(&records, false, &FaultPlan::none());
    let baseline = run_offheap_checkpoint(&records, true, &FaultPlan::none());
    assert_eq!(
        baseline.results, heap_baseline.results,
        "the off-heap region must not change checkpointed values"
    );
    assert!(
        baseline.report.recovery.checkpoint_writes > 0,
        "the explicit mark must snapshot the off-heap-resident RDD"
    );

    // Crash executor 1 after the first action: the replay restores the
    // snapshot and re-persists it off-heap instead of recomputing.
    let faulted = run_offheap_checkpoint(&records, true, &FaultPlan::single_crash(1, 3));
    assert_eq!(
        faulted.results, baseline.results,
        "restored payload differs"
    );
    let rec = faulted.report.recovery;
    assert_eq!(rec.executor_crashes, 1);
    assert!(
        rec.partitions_restored > 0,
        "restore must come from the store"
    );
    assert_eq!(
        rec.stages_recomputed, 0,
        "the snapshot short-circuits the shuffle recompute"
    );
    let e = &faulted.report.exec;
    assert_eq!(
        e.offheap_frees, e.offheap_allocs,
        "region must drain after replay"
    );
    assert_eq!(e.offheap_leaks, 0, "no leaks after replay");
    assert_eq!(e.offheap_dead_reads, 0, "no dead reads after replay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary payload trees cached off-heap: checkpoint save/restore
    /// round-trips the off-heap payload bit-identically through a crash,
    /// and the region still drains exactly.
    #[test]
    fn offheap_checkpoint_roundtrip_is_bit_identical(
        values in prop::collection::vec(payload_strategy(), 1..12),
    ) {
        // The shuffle partitions by key; carry each arbitrary payload
        // tree as a keyed value.
        let records: Vec<Payload> = values
            .into_iter()
            .enumerate()
            .map(|(i, p)| Payload::keyed(i as i64, p))
            .collect();
        let baseline = run_offheap_checkpoint(&records, true, &FaultPlan::none());
        let faulted = run_offheap_checkpoint(&records, true, &FaultPlan::single_crash(0, 3));
        prop_assert_eq!(&faulted.results, &baseline.results, "restored payload differs");
        prop_assert_eq!(faulted.report.recovery.executor_crashes, 1);
        let e = &faulted.report.exec;
        prop_assert_eq!(e.offheap_frees, e.offheap_allocs, "region must drain");
        prop_assert_eq!(e.offheap_leaks, 0);
        prop_assert_eq!(e.offheap_dead_reads, 0);
    }
}
