//! The PR 5 core guarantee: fault injection is *result-transparent* and
//! *deterministic*.
//!
//! 1. A fault-injected run (crashes + recovery, message losses, transient
//!    allocation failures) produces bit-identical workload results to the
//!    fault-free run, under both recovery policies.
//! 2. For a fixed fault plan, the merged `RunReport` — including every
//!    per-executor sub-report — is bit-identical across host-thread
//!    budgets.
//! 3. An injected crash with recovery disabled surfaces as a typed error
//!    (the poisoned exchange), never a deadlock.

use panthera::{MemoryMode, RecoveryPolicy, SystemConfig, SIM_GB};
use panthera_cluster::{
    run_cluster, run_cluster_faulted, AllocFaultPoint, ClusterOutcome, FaultPlan, FaultSpec,
    GatherKind, LossPoint,
};
use sparklet::{ActionResult, EngineConfig};
use workloads::{build_workload, WorkloadId};

fn cluster_config(mode: MemoryMode, executors: u16, policy: RecoveryPolicy) -> SystemConfig {
    let mut cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = executors;
    cfg.recovery = policy;
    cfg.verify_heap = true; // every incarnation's heap must stay sound
    cfg
}

fn run_faulted(
    id: WorkloadId,
    policy: RecoveryPolicy,
    executors: u16,
    host_threads: usize,
    plan: &FaultPlan,
) -> ClusterOutcome {
    let cfg = cluster_config(MemoryMode::Panthera, executors, policy);
    run_cluster_faulted(
        || {
            let w = build_workload(id, 0.05, 11);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        host_threads,
        plan,
    )
    .expect("valid cluster config")
}

fn assert_results_eq(a: &[(String, ActionResult)], b: &[(String, ActionResult)], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: action count");
    for ((av, ar), (bv, br)) in a.iter().zip(b.iter()) {
        assert_eq!(av, bv, "{what}: action order");
        assert_eq!(ar, br, "{what}: {av}");
    }
}

#[test]
fn crashed_executor_recovers_with_identical_results() {
    for (id, policy) in [
        (WorkloadId::Tc, RecoveryPolicy::Recompute),
        (WorkloadId::Pr, RecoveryPolicy::Recompute),
        (WorkloadId::Tc, RecoveryPolicy::CheckpointEvery(1)),
        (WorkloadId::Pr, RecoveryPolicy::CheckpointEvery(2)),
    ] {
        let what = format!("{id}/{policy:?}");
        let baseline = run_faulted(id, policy, 3, 3, &FaultPlan::none());
        let faulted = run_faulted(id, policy, 3, 3, &FaultPlan::single_crash(1, 2));
        assert_results_eq(&faulted.results, &baseline.results, &what);
        let rec = faulted.report.recovery;
        assert_eq!(rec.executor_crashes, 1, "{what}: the planned crash fired");
        assert!(rec.recovery_s > 0.0, "{what}: recovery took virtual time");
        match policy {
            RecoveryPolicy::Recompute => {
                assert!(
                    rec.partitions_recomputed > 0,
                    "{what}: lineage recomputation must do work"
                );
                assert_eq!(rec.checkpoint_writes, 0, "{what}: no auto checkpoints");
            }
            RecoveryPolicy::CheckpointEvery(_) => {
                assert!(rec.checkpoint_writes > 0, "{what}: checkpoints were taken");
                assert!(rec.checkpoint_bytes > 0, "{what}: checkpoints have bytes");
            }
        }
        // Recovery cost is visible in the simulated timeline: the crashed
        // run cannot be faster than the fault-free one.
        assert!(
            faulted.report.elapsed_s >= baseline.report.elapsed_s,
            "{what}: recovery must not make the run faster"
        );
    }
}

#[test]
fn message_loss_and_alloc_faults_preserve_results() {
    let plan = FaultPlan {
        losses: vec![
            LossPoint {
                exec: 0,
                kind: GatherKind::Shuffle,
                ordinal: 0,
            },
            LossPoint {
                exec: 1,
                kind: GatherKind::Action,
                ordinal: 0,
            },
        ],
        alloc_faults: vec![AllocFaultPoint {
            exec: 0,
            materialization: 1,
        }],
        ..FaultPlan::none()
    };
    let plan = FaultPlan {
        retransmit_penalty_ns: 2.0e5,
        alloc_retry_ns: 1.0e5,
        ..plan
    };
    let baseline = run_faulted(
        WorkloadId::Tc,
        RecoveryPolicy::Recompute,
        2,
        2,
        &FaultPlan::none(),
    );
    let faulted = run_faulted(WorkloadId::Tc, RecoveryPolicy::Recompute, 2, 2, &plan);
    assert_results_eq(&faulted.results, &baseline.results, "loss+alloc");
    let rec = faulted.report.recovery;
    assert_eq!(rec.messages_lost, 2, "both loss points fired");
    assert_eq!(rec.alloc_faults, 1, "the alloc fault fired");
    assert_eq!(rec.executor_crashes, 0);
    assert!(
        faulted.report.elapsed_s > baseline.report.elapsed_s,
        "retransmits and retries cost virtual time"
    );
}

#[test]
fn fixed_fault_plan_is_host_thread_invariant() {
    let spec = FaultSpec {
        crashes: 1,
        barrier_lo: 1,
        barrier_hi: 3,
        max_losses: 2,
        max_alloc_faults: 2,
        ..FaultSpec::default()
    };
    let plan = FaultPlan::generate(0xFEED, 3, spec);
    assert!(!plan.crashes.is_empty(), "plan must contain a crash");
    for policy in [
        RecoveryPolicy::Recompute,
        RecoveryPolicy::CheckpointEvery(2),
    ] {
        let serial = run_faulted(WorkloadId::Pr, policy, 3, 1, &plan);
        let threaded = run_faulted(WorkloadId::Pr, policy, 3, 3, &plan);
        let what = format!("{policy:?}");
        assert_results_eq(&serial.results, &threaded.results, &what);
        assert!(
            serial.report.recovery.executor_crashes >= 1,
            "{what}: the planned crash fired"
        );
        assert_eq!(
            serial.report.to_json().to_compact(),
            threaded.report.to_json().to_compact(),
            "{what}: fault-injected aggregate report must not depend on host threads"
        );
        for (e, (s, t)) in serial
            .per_executor
            .iter()
            .zip(threaded.per_executor.iter())
            .enumerate()
        {
            assert_eq!(
                s.to_json().to_compact(),
                t.to_json().to_compact(),
                "{what}: executor {e} sub-report must not depend on host threads"
            );
        }
    }
}

#[test]
fn unrecovered_crash_is_a_typed_error_not_a_deadlock() {
    let mut plan = FaultPlan::single_crash(1, 1);
    plan.recover = false;
    let cfg = cluster_config(MemoryMode::Panthera, 3, RecoveryPolicy::Recompute);
    let err = run_cluster_faulted(
        || {
            let w = build_workload(WorkloadId::Tc, 0.05, 11);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        3,
        &plan,
    )
    .unwrap_err();
    assert!(
        err.message().contains("crashed"),
        "typed crash error, got: {err}"
    );
}

#[test]
fn empty_plan_matches_plain_cluster_run() {
    let cfg = cluster_config(MemoryMode::Panthera, 2, RecoveryPolicy::Recompute);
    let build = || {
        let w = build_workload(WorkloadId::Tc, 0.05, 11);
        (w.program, w.fns, w.data)
    };
    let plain = run_cluster(build, &cfg, EngineConfig::default(), 2).unwrap();
    let faulted =
        run_cluster_faulted(build, &cfg, EngineConfig::default(), 2, &FaultPlan::none()).unwrap();
    assert_eq!(
        plain.report.to_json().to_compact(),
        faulted.report.to_json().to_compact(),
        "an empty fault plan must be invisible"
    );
}
