//! Off-heap cached-RDD region guarantees (ISSUE 6 acceptance criteria):
//!
//! 1. With `offheap_cache` on, every persisted heap-level RDD lives in
//!    the off-heap region for exactly its lineage lifetime: the static
//!    [`panthera_analysis::collect_lifetimes`] schedule drives the
//!    refcounts, so frees == allocs, nothing leaks to the end-of-run
//!    sweep, and no consumer ever reads a block after its planned death.
//! 2. Action results are bit-identical with the region on or off — the
//!    region moves storage, never values.
//! 3. With the region on, cached data is invisible to the GC: the
//!    tracing/card-marking load drops (fewer or equal cards scanned, no
//!    more GC time) relative to heap-cached runs on cache-heavy
//!    workloads.
//!
//! Exercised across every Table 4 workload deterministically plus random
//! (workload, scale, seed) shapes via proptest.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use proptest::prelude::*;
use sparklet::ActionResult;
use workloads::{build_workload, WorkloadId};

fn run_with_offheap(
    id: WorkloadId,
    mode: MemoryMode,
    scale: f64,
    seed: u64,
    offheap: bool,
) -> (RunReport, Vec<(String, ActionResult)>) {
    let mut cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    cfg.offheap_cache = offheap;
    let w = build_workload(id, scale, seed);
    let run = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration");
    (run.report, run.results)
}

fn assert_region_drained(report: &RunReport, what: &str) {
    let e = &report.exec;
    assert_eq!(
        e.offheap_frees, e.offheap_allocs,
        "{what}: every off-heap block must be freed exactly once \
         (allocs={}, frees={})",
        e.offheap_allocs, e.offheap_frees
    );
    assert_eq!(
        e.offheap_leaks, 0,
        "{what}: the end-of-run sweep found blocks the lifetime plan missed"
    );
    assert_eq!(
        e.offheap_dead_reads, 0,
        "{what}: a consumer read an off-heap block after its planned death"
    );
}

#[test]
fn offheap_region_drains_and_preserves_results_on_all_workloads() {
    for id in WorkloadId::ALL {
        for mode in [MemoryMode::Panthera, MemoryMode::Unmanaged] {
            let what = format!("{id}/{mode}");
            let (rep_off, out_off) = run_with_offheap(id, mode, 0.05, 11, false);
            let (rep_on, out_on) = run_with_offheap(id, mode, 0.05, 11, true);
            assert_eq!(
                out_on, out_off,
                "{what}: the off-heap region must never change a value"
            );
            assert_region_drained(&rep_on, &what);
            assert_eq!(
                rep_off.exec.offheap_allocs, 0,
                "{what}: region off means no off-heap activity"
            );
        }
    }
}

#[test]
fn offheap_region_takes_cache_pressure_off_the_gc() {
    // PageRank persists its link structure for every iteration plus a
    // fresh contributions RDD per iteration — the cache-heaviest Table 4
    // workload. Off-heap, none of that data is traced or card-marked.
    // (At tiny scales GC timing is noise — a collection landing on a
    // different live set can go either way — so probe at a scale where
    // major collections actually fire.)
    let (rep_off, _) = run_with_offheap(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, false);
    let (rep_on, _) = run_with_offheap(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, true);
    assert!(
        rep_on.exec.offheap_allocs > 0,
        "PR must cache through the region"
    );
    let gc_off = rep_off.minor_gc_s + rep_off.major_gc_s;
    let gc_on = rep_on.minor_gc_s + rep_on.major_gc_s;
    assert!(
        gc_on <= gc_off,
        "off-heap caching must not add GC time (on={gc_on}, off={gc_off})"
    );
    assert!(
        rep_on.gc.cards_scanned <= rep_off.gc.cards_scanned,
        "off-heap caching must not add card-scan work"
    );
    assert!(
        rep_on.heap.allocated_bytes < rep_off.heap.allocated_bytes,
        "cached data must leave the managed heap"
    );
}

#[test]
fn offheap_eviction_free_runs_have_no_evictions() {
    // With the region on, heap-level persists bypass the managed cache
    // entirely — the engine's LRU has nothing to evict, which is what
    // keeps the static lifetime plan and the dynamic run in lockstep.
    let (rep_on, _) = run_with_offheap(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, true);
    assert_eq!(
        rep_on.exec.evictions, 0,
        "off-heap cached runs must not evict"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (workload, scale, seed) shapes: refcounts hit zero exactly
    /// at lineage death — no leak, no premature free — and results are
    /// unchanged.
    #[test]
    fn offheap_lifetimes_are_exact_under_random_shapes(
        pick in 0usize..7,
        scale_milli in 30u64..90,
        seed in 0u64..1_000,
    ) {
        let id = WorkloadId::ALL[pick];
        let scale = scale_milli as f64 / 1000.0;
        let (_, out_off) = run_with_offheap(id, MemoryMode::Panthera, scale, seed, false);
        let (rep_on, out_on) = run_with_offheap(id, MemoryMode::Panthera, scale, seed, true);
        prop_assert_eq!(&out_on, &out_off, "{} results", id);
        let e = &rep_on.exec;
        prop_assert_eq!(e.offheap_frees, e.offheap_allocs, "{} frees == allocs", id);
        prop_assert_eq!(e.offheap_leaks, 0, "{} leaks", id);
        prop_assert_eq!(e.offheap_dead_reads, 0, "{} dead reads", id);
    }
}
