//! Lifetime-based region-arena guarantees (DESIGN.md §11):
//!
//! 1. With `region_alloc` on, streamed temporaries live in a stage-scoped
//!    scratch arena reset wholesale at stage end, and heap-level persists
//!    live in refcounted RDD-lifetime arenas driven by the static
//!    [`panthera_analysis::collect_lifetimes`] schedule: frees == allocs,
//!    nothing leaks to the end-of-run sweep, and no consumer ever reads
//!    an arena after its planned death.
//! 2. Action results are bit-identical with regions on or off — regions
//!    move storage and charges, never values.
//! 3. With regions on, neither the scratch data nor the cached data is
//!    ever traced, card-marked, or promoted: minor-GC time and cards
//!    scanned drop relative to the traced-heap run on every workload
//!    that streams or caches.
//!
//! Exercised across every Table 4 workload deterministically plus random
//! (workload, scale, seed) shapes via proptest.

use panthera::{MemoryMode, RunBuilder, RunReport, SystemConfig, SIM_GB};
use proptest::prelude::*;
use sparklet::ActionResult;
use workloads::{build_workload, WorkloadId};

fn run_with_regions(
    id: WorkloadId,
    mode: MemoryMode,
    scale: f64,
    seed: u64,
    regions: bool,
) -> (RunReport, Vec<(String, ActionResult)>) {
    let mut cfg = SystemConfig::new(mode, 16 * SIM_GB, 1.0 / 3.0);
    cfg.region_alloc = regions;
    let w = build_workload(id, scale, seed);
    let run = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration");
    (run.report, run.results)
}

fn assert_arenas_drained(report: &RunReport, what: &str) {
    let e = &report.exec;
    assert_eq!(
        e.region_frees, e.region_allocs,
        "{what}: every RDD-lifetime arena must be freed exactly once \
         (allocs={}, frees={})",
        e.region_allocs, e.region_frees
    );
    assert_eq!(
        e.region_leaks, 0,
        "{what}: the end-of-run sweep found arenas the lifetime plan missed"
    );
    assert_eq!(
        e.region_dead_reads, 0,
        "{what}: a consumer read an arena after its planned death"
    );
}

#[test]
fn region_arenas_drain_and_preserve_results_on_all_workloads() {
    for id in WorkloadId::ALL {
        for mode in [MemoryMode::Panthera, MemoryMode::Unmanaged] {
            let what = format!("{id}/{mode}");
            let (rep_off, out_off) = run_with_regions(id, mode, 0.05, 11, false);
            let (rep_on, out_on) = run_with_regions(id, mode, 0.05, 11, true);
            assert_eq!(
                out_on, out_off,
                "{what}: region allocation must never change a value"
            );
            assert_arenas_drained(&rep_on, &what);
            assert!(
                rep_on.exec.region_stage_arenas > 0,
                "{what}: every evaluation opens a stage scratch arena"
            );
            assert_eq!(
                rep_off.exec.region_allocs + rep_off.exec.region_stage_arenas,
                0,
                "{what}: regions off means no region activity"
            );
        }
    }
}

#[test]
fn region_allocation_takes_streaming_pressure_off_the_gc() {
    // PageRank streams contributions every iteration and caches its link
    // structure — both loads the arenas absorb. With regions on, the
    // young generation sees almost no allocation, so minor GCs (and the
    // card scans they trigger) all but disappear.
    let (rep_off, _) = run_with_regions(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, false);
    let (rep_on, _) = run_with_regions(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, true);
    assert!(
        rep_on.exec.region_allocs > 0,
        "PR must cache through RDD-lifetime arenas"
    );
    assert!(
        rep_on.exec.region_stage_bytes > 0,
        "PR must stream through the stage scratch arena"
    );
    assert!(
        rep_on.minor_gc_s <= rep_off.minor_gc_s,
        "region allocation must not add minor-GC time (on={}, off={})",
        rep_on.minor_gc_s,
        rep_off.minor_gc_s
    );
    assert!(
        rep_on.gc.cards_scanned <= rep_off.gc.cards_scanned,
        "region allocation must not add card-scan work"
    );
    assert!(
        rep_on.heap.allocated_bytes < rep_off.heap.allocated_bytes,
        "region-resident data must leave the managed heap"
    );
}

#[test]
fn region_runs_have_no_evictions() {
    // With regions on, heap-level persists bypass the managed cache —
    // the engine's LRU has nothing to evict, keeping the static lifetime
    // plan and the dynamic run in lockstep.
    let (rep_on, _) = run_with_regions(WorkloadId::Pr, MemoryMode::Panthera, 0.4, 3, true);
    assert_eq!(
        rep_on.exec.evictions, 0,
        "region-cached runs must not evict"
    );
}

#[test]
fn region_results_match_across_executor_counts() {
    // Region arenas are per-executor: each executor plans lifetimes over
    // its own slice of the data, so results must stay bit-identical with
    // regions on or off at any cluster width — and every executor's
    // arenas must drain exactly.
    for id in WorkloadId::ALL {
        for executors in [2u16, 4] {
            let build = move || {
                let w = build_workload(id, 0.05, 11);
                (w.program, w.fns, w.data)
            };
            let run = |regions: bool| {
                let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
                cfg.executors = executors;
                cfg.region_alloc = regions;
                RunBuilder::from_build(&build)
                    .config(cfg)
                    .run()
                    .expect("valid configuration")
            };
            let off = run(false);
            let on = run(true);
            let what = format!("{id}/E={executors}");
            assert_eq!(
                on.results, off.results,
                "{what}: region allocation must never change a clustered value"
            );
            assert_eq!(
                on.per_executor.len(),
                executors as usize,
                "{what}: executor count"
            );
            for (i, rep) in on.per_executor.iter().enumerate() {
                assert_arenas_drained(rep, &format!("{what}/executor-{i}"));
                assert!(
                    rep.exec.region_stage_arenas > 0,
                    "{what}/executor-{i}: every executor opens stage scratch arenas"
                );
            }
        }
    }
}

#[test]
fn offheap_cache_wins_over_region_alloc_for_persists() {
    // Both flags on: persisted RDDs go to the off-heap H2 region;
    // streamed temporaries still use the stage scratch arena.
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.offheap_cache = true;
    cfg.region_alloc = true;
    let w = build_workload(WorkloadId::Pr, 0.05, 11);
    let stacked = RunBuilder::new(&w.program, w.fns, w.data)
        .config(cfg)
        .run()
        .expect("valid configuration");
    let rep = &stacked.report;
    assert!(rep.exec.offheap_allocs > 0, "persists go off-heap");
    assert_eq!(rep.exec.region_allocs, 0, "no RDD-lifetime arenas");
    assert!(rep.exec.region_stage_bytes > 0, "scratch arena still used");
    let w2 = build_workload(WorkloadId::Pr, 0.05, 11);
    let mut cfg2 = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg2.offheap_cache = true;
    let offheap_only = RunBuilder::new(&w2.program, w2.fns, w2.data)
        .config(cfg2)
        .run()
        .expect("valid configuration");
    assert_eq!(
        stacked.results, offheap_only.results,
        "stacking flags changes no value"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (workload, scale, seed) shapes: arena refcounts hit zero
    /// exactly at lineage death — no leak, no premature free — and
    /// results are unchanged.
    #[test]
    fn region_lifetimes_are_exact_under_random_shapes(
        pick in 0usize..7,
        scale_milli in 30u64..90,
        seed in 0u64..1_000,
    ) {
        let id = WorkloadId::ALL[pick];
        let scale = scale_milli as f64 / 1000.0;
        let (_, out_off) = run_with_regions(id, MemoryMode::Panthera, scale, seed, false);
        let (rep_on, out_on) = run_with_regions(id, MemoryMode::Panthera, scale, seed, true);
        prop_assert_eq!(&out_on, &out_off, "{} results", id);
        let e = &rep_on.exec;
        prop_assert_eq!(e.region_frees, e.region_allocs, "{} frees == allocs", id);
        prop_assert_eq!(e.region_leaks, 0, "{} leaks", id);
        prop_assert_eq!(e.region_dead_reads, 0, "{} dead reads", id);
    }
}
