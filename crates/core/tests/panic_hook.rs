//! The quiet-unwind panic hook is *scoped to cluster runs* (PR 8 fix —
//! PR 5 installed it once and leaked it for the life of the process):
//!
//! * while a run is live, only `ClusterError` panics on cluster-owned
//!   executor threads are silenced; every other panic — including a
//!   `ClusterError` payload thrown on a non-cluster thread — still
//!   reaches the previously installed hook with its report intact;
//! * when the last run ends, the previous hook is restored verbatim.
//!
//! This is the only test in this binary: it manipulates the process-wide
//! panic hook and must not race other tests.

use panthera::cluster::{quiet_unwind_idle, run_cluster_faulted, FaultPlan};
use panthera::{MemoryMode, RecoveryPolicy, SystemConfig, SIM_GB};
use sparklet::{ClusterError, EngineConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use workloads::{build_workload, WorkloadId};

static CUSTOM_HOOK_HITS: AtomicUsize = AtomicUsize::new(0);

fn run_once_with_crash() {
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 16 * SIM_GB, 1.0 / 3.0);
    cfg.executors = 2;
    cfg.recovery = RecoveryPolicy::Recompute;
    let outcome = run_cluster_faulted(
        || {
            let w = build_workload(WorkloadId::Tc, 0.03, 11);
            (w.program, w.fns, w.data)
        },
        &cfg,
        EngineConfig::default(),
        2,
        &FaultPlan::single_crash(1, 2),
    )
    .expect("valid cluster config");
    assert_eq!(
        outcome.report.recovery.executor_crashes, 1,
        "the planned crash fired (executor threads really panicked)"
    );
}

#[test]
fn hook_is_restored_and_only_cluster_panics_are_silenced() {
    assert!(
        quiet_unwind_idle(),
        "no quiet hook before the first cluster run"
    );

    // Install a sentinel hook so restoration is observable: after the
    // runs, panics must land here again.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {
        CUSTOM_HOOK_HITS.fetch_add(1, Ordering::SeqCst);
    }));

    // Two back-to-back runs exercise install → restore → reinstall;
    // each injects a real executor crash, so ClusterError panics fly on
    // cluster threads and must all be silenced (no sentinel hits).
    run_once_with_crash();
    assert!(quiet_unwind_idle(), "hook handed back after the first run");
    run_once_with_crash();
    assert!(quiet_unwind_idle(), "hook handed back after the second run");
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        0,
        "planned executor unwinds never reached the outer hook"
    );

    // A ClusterError payload on a *non-cluster* thread is somebody
    // else's bug: it must reach the (restored) outer hook.
    let err = std::panic::catch_unwind(|| {
        std::panic::panic_any(ClusterError::InjectedCrash {
            exec: 0,
            barrier: 0,
            at_ns: 0.0,
        });
    });
    assert!(err.is_err());
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        1,
        "a ClusterError off a cluster thread is not silenced"
    );

    // An ordinary panic also reaches the restored hook.
    let err = std::panic::catch_unwind(|| panic!("plain panic"));
    assert!(err.is_err());
    assert_eq!(
        CUSTOM_HOOK_HITS.load(Ordering::SeqCst),
        2,
        "the pre-run hook is back in place"
    );

    std::panic::set_hook(default_hook);
}
