#![deny(missing_docs)]

//! # Panthera
//!
//! A full reproduction of **“Panthera: Holistic Memory Management for Big
//! Data Processing over Hybrid Memories”** (Wang et al., PLDI 2019) as a
//! deterministic simulation in pure Rust.
//!
//! Panthera manages a Spark-like system's memory across hybrid DRAM + NVM:
//! a static analysis infers, per persisted RDD, whether it is hot (DRAM)
//! or cold (NVM); a modified generational GC pretenures RDD backbone
//! arrays into a split old generation, propagates the tags to the rest of
//! each RDD's objects during tracing, and migrates mis-placed RDDs at
//! major collections using runtime access frequencies.
//!
//! This crate ties the substrates together:
//!
//! * [`hybridmem`] — the DRAM/NVM device, time, energy, and traffic models;
//! * [`mheap`] — the simulated managed heap (generations, cards, barriers);
//! * [`gc`] — the policy-parameterized collectors;
//! * [`sparklang`] / [`panthera_analysis`] — the driver-program IR and the
//!   Section 3 tag inference;
//! * [`sparklet`] — the RDD execution engine;
//!
//! and contributes the [`PantheraRuntime`] (the `rdd_alloc` wait-state
//! protocol, monitoring, and the Section 4.3 public APIs), the five
//! [`MemoryMode`]s of the evaluation, the [`cluster`] driver (DESIGN.md
//! §8-9), and the [`RunBuilder`] entry point that produces a
//! [`RunReport`] for every figure in the paper.
//!
//! ```
//! use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
//! use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
//! use sparklet::DataRegistry;
//! use mheap::Payload;
//!
//! // A small cached-dataset workload.
//! let mut b = ProgramBuilder::new("demo");
//! let src = b.source("nums");
//! let xs = b.bind("xs", src.distinct());
//! b.persist(xs, StorageLevel::MemoryOnly);
//! b.loop_n(4, |b| b.action(xs, ActionKind::Count));
//! let (program, fns) = b.finish();
//!
//! let mut data = DataRegistry::new();
//! data.register("nums", (0..256).map(Payload::Long).collect());
//!
//! let config = SystemConfig::new(MemoryMode::Panthera, 2 * SIM_GB, 1.0 / 3.0);
//! let run = RunBuilder::new(&program, fns, data)
//!     .config(config)
//!     .run()
//!     .expect("valid configuration");
//! assert_eq!(run.results.len(), 4);
//! assert!(run.report.elapsed_s > 0.0);
//! ```

pub mod cluster;
mod config;
mod error;
mod mode;
mod report;
mod runbuilder;
mod runtime;
mod simulate;

pub use cluster::{
    run_cluster, run_cluster_default, run_cluster_faulted, ClusterOutcome, FaultPlan,
};
pub use cluster::{ExecutorPool, PoolLease};
pub use config::{ConfigError, RecoveryPolicy, SystemConfig, SIM_GB, STATIC_POWER_TIMEBASE_SCALE};
pub use error::RunError;
pub use mode::MemoryMode;
pub use report::{RecoveryStats, RunReport};
pub use runbuilder::{RunBuilder, RunParts, RunSource, RunSummary};
pub use runtime::{to_mem_tag, PantheraRuntime};
pub use simulate::SingleCursor;
pub use sparklet::{CostModel, ShuffleTransport};

// Re-export the observability crate so downstream users attach sinks
// without naming `obs` as a direct dependency.
pub use obs;

/// One-stop imports for driving a simulation end to end.
///
/// ```
/// use panthera::prelude::*;
///
/// let mut b = ProgramBuilder::new("p");
/// let src = b.source("xs");
/// let ys = b.bind("ys", src.distinct());
/// b.persist(ys, StorageLevel::MemoryOnly);
/// b.action(ys, ActionKind::Count);
/// let (program, fns) = b.finish();
///
/// let mut data = DataRegistry::new();
/// data.register("xs", (0..128).map(Payload::Long).collect());
///
/// let run = RunBuilder::new(&program, fns, data)
///     .config(SystemConfig::new(MemoryMode::Panthera, 2 * SIM_GB, 1.0 / 3.0))
///     .run()
///     .expect("valid configuration");
/// assert!(run.report.elapsed_s > 0.0);
/// ```
pub mod prelude {
    pub use crate::{
        ConfigError, MemoryMode, RunBuilder, RunError, RunReport, RunSummary, SystemConfig, SIM_GB,
    };
    pub use mheap::Payload;
    pub use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
    pub use sparklet::{DataRegistry, RunOutcome};
}
