//! System configuration: heap geometry, DRAM ratio, mode, and ablations.
//!
//! # Scale
//!
//! The simulator runs the paper's setups at 1/1000 scale: one simulated
//! megabyte stands for one of the paper's gigabytes, and the workloads'
//! datasets are scaled to match. All *ratios* — DRAM fraction, nursery
//! fraction, occupancies — are preserved, which is what the evaluation's
//! normalized figures depend on.

use crate::mode::MemoryMode;
use gc::{PantheraPolicy, PlacementPolicy, UnifiedPolicy, WriteRationingPolicy};
use hybridmem::{DeviceKind, DeviceSpec, MemorySystemConfig};
use mheap::{HeapConfig, OldGenLayout};
use std::fmt;

/// A configuration constraint violation, reported by
/// [`SystemConfig::validate`] and the `try_*` run entry points instead
/// of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Wrap a constraint-violation message.
    pub fn new(msg: impl Into<String>) -> Self {
        ConfigError(msg.into())
    }

    /// The violated constraint, as text.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// One simulated "gigabyte" (scaled to a megabyte).
pub const SIM_GB: u64 = 1 << 20;

/// Timebase correction for static power: the 1/1000 scale compresses
/// elapsed time more than traffic volume, so background power is scaled up
/// to restore the real system's static/dynamic energy balance (in which
/// DRAM background power dominates, per the paper's Section 5.1 model).
pub const STATIC_POWER_TIMEBASE_SCALE: f64 = 40.0;

/// Full configuration of one simulated run.
///
/// # Examples
///
/// ```
/// use panthera::{MemoryMode, SystemConfig, SIM_GB};
///
/// // The paper's main setup: a 64 GB heap, one third of it DRAM.
/// let cfg = SystemConfig::new(MemoryMode::Panthera, 64 * SIM_GB, 1.0 / 3.0);
/// assert!(cfg.validate().is_ok());
/// assert_eq!(cfg.dram_capacity() + cfg.nvm_capacity(), 64 * SIM_GB);
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Which memory-management mode to run.
    pub mode: MemoryMode,
    /// Heap size in simulated bytes (use [`SIM_GB`] multiples to mirror
    /// the paper's 64 GB / 120 GB heaps).
    pub heap_bytes: u64,
    /// DRAM as a fraction of total memory (1/4 or 1/3 in the paper).
    pub dram_ratio: f64,
    /// Young-generation fraction (the paper settles on 1/6).
    pub nursery_fraction: f64,
    /// Interleaving chunk size for the unmanaged mode (the paper's 1 GB,
    /// scaled).
    pub chunk_bytes: u64,
    /// Ablation: eager promotion (Section 4.2.2).
    pub eager_promotion: bool,
    /// Ablation: card padding (Section 4.2.3).
    pub card_padding: bool,
    /// Ablation: dynamic monitoring + migration (Section 5.5).
    pub dynamic_migration: bool,
    /// Arrays with at least this many elements trigger the `rdd_alloc`
    /// wait-state match (the paper uses a million; scaled down here).
    pub large_array_elems: usize,
    /// Managed-runtime representation bloat added to every data tuple —
    /// the reason gigabyte-scale inputs occupy 10-30 GB of JVM heap.
    pub tuple_bloat_bytes: u64,
    /// Override the NVM device model (defaults to the paper's PCM-like
    /// Table 2 parameters; see [`DeviceSpec::stt_mram`] etc. for other
    /// technologies from the paper's introduction).
    pub nvm_spec: Option<DeviceSpec>,
    /// Seed for the interleaved chunk map.
    pub seed: u64,
    /// Event-observer handle: sinks attached here receive the structured
    /// event stream ([`obs::Event`]) from every layer. Disabled by
    /// default; events observe, never charge, so attaching sinks changes
    /// no simulated quantity.
    pub observer: obs::Observer,
    /// Verify every heap invariant at collection entry and exit
    /// (HotSpot's `VerifyBeforeGC`/`VerifyAfterGC`; DESIGN.md §7).
    /// Defaults to the `PANTHERA_VERIFY` environment variable. The
    /// verifier observes, never charges: enabling it changes no simulated
    /// quantity, and a violation aborts the run.
    pub verify_heap: bool,
    /// Executors in the simulated cluster (DESIGN.md §8). Each executor
    /// gets its own private heap of `heap_bytes` and runs the partitions
    /// `i % executors` of every stage. `1` (the default) is the classic
    /// single-JVM run; values above 1 require the `panthera-cluster`
    /// driver, which the single-runtime entry points report as a
    /// [`ConfigError`].
    pub executors: u16,
    /// How the cluster driver recovers a crashed executor's partitions
    /// (DESIGN.md §9). Ignored by single-runtime entry points.
    pub recovery: RecoveryPolicy,
    /// Data-movement charges (disk, network, serde, shared memory) — the
    /// single source of truth the engine and the cluster exchange charge
    /// from (DESIGN.md §10).
    pub costs: sparklet::CostModel,
    /// How shuffle data crosses executors: `Serde` (the distributed
    /// default: serialize + network both ways) or `SharedRegion` (the
    /// colocated zero-copy fast path: memory bandwidth, no serde).
    /// Consulted only in cluster mode.
    pub transport: sparklet::ShuffleTransport,
    /// Store heap-level persisted RDDs in the off-heap H2 region: the GC
    /// neither traces nor card-marks them, they are never serialized, and
    /// they are released on the analysis crate's lifetime schedule
    /// (DESIGN.md §10).
    pub offheap_cache: bool,
    /// Lifetime-based region allocation (DESIGN.md §11): streamed
    /// temporaries bump a stage-scoped scratch arena reset wholesale at
    /// stage end, and heap-level persists live in refcounted RDD-lifetime
    /// arenas released on the analysis crate's lifetime schedule. Region
    /// data is never traced, card-marked, or promoted; action results are
    /// bit-identical with the flag on or off. When `offheap_cache` is
    /// also set, it takes precedence for persisted RDDs.
    pub region_alloc: bool,
}

/// How lost RDD partitions are rebuilt after an executor crash.
///
/// Either way recovery is deterministic: a replacement executor replays
/// the driver program against the surviving exchange state; the policy
/// only decides how much of the lineage the replay must re-execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Pure lineage: recompute every lost partition from its sources
    /// (Spark's default story — cheap in fault-free runs, the full
    /// lineage depth when a crash hits).
    Recompute,
    /// Snapshot every `n`-th shuffle (plus every explicitly
    /// `checkpoint()`-marked RDD) into durable NVM storage, bounding
    /// replay recomputation to fewer than `n` shuffle stages at the cost
    /// of charged NVM checkpoint writes. `n` must be at least 1.
    CheckpointEvery(u32),
}

impl SystemConfig {
    /// A configuration in `mode` with the given heap size and DRAM ratio.
    pub fn new(mode: MemoryMode, heap_bytes: u64, dram_ratio: f64) -> Self {
        SystemConfig {
            mode,
            heap_bytes,
            dram_ratio,
            nursery_fraction: 1.0 / 6.0,
            chunk_bytes: SIM_GB,
            eager_promotion: true,
            card_padding: true,
            dynamic_migration: true,
            large_array_elems: 64,
            tuple_bloat_bytes: 240,
            nvm_spec: None,
            seed: 0x9a77,
            observer: obs::Observer::disabled(),
            verify_heap: gc::verify_env_enabled(),
            executors: 1,
            recovery: RecoveryPolicy::Recompute,
            costs: sparklet::CostModel::default(),
            transport: sparklet::ShuffleTransport::Serde,
            offheap_cache: false,
            region_alloc: false,
        }
    }

    /// The paper's main configuration: a "64 GB" heap with 1/3 DRAM.
    pub fn paper_default(mode: MemoryMode) -> Self {
        Self::new(mode, 64 * SIM_GB, 1.0 / 3.0)
    }

    /// Installed DRAM capacity (for static power).
    pub fn dram_capacity(&self) -> u64 {
        match self.mode {
            MemoryMode::DramOnly => self.heap_bytes,
            _ => (self.heap_bytes as f64 * self.dram_ratio) as u64,
        }
    }

    /// Installed NVM capacity (for static power).
    pub fn nvm_capacity(&self) -> u64 {
        match self.mode {
            MemoryMode::DramOnly => 0,
            _ => self.heap_bytes - self.dram_capacity(),
        }
    }

    /// The heap configuration this system uses.
    pub fn heap_config(&self) -> HeapConfig {
        let mut cfg = HeapConfig::panthera(self.heap_bytes, self.dram_ratio);
        cfg.nursery_fraction = self.nursery_fraction;
        cfg.seed = self.seed;
        cfg.tuple_bloat_bytes = self.tuple_bloat_bytes;
        match self.mode {
            MemoryMode::DramOnly => {
                cfg.dram_ratio = 1.0;
                cfg.old_layout = OldGenLayout::Unified(DeviceKind::Dram);
                cfg.card_padding = false;
            }
            MemoryMode::Unmanaged => {
                cfg.old_layout = OldGenLayout::Interleaved {
                    chunk_bytes: self.chunk_bytes,
                };
                cfg.card_padding = false;
            }
            MemoryMode::KingsguardNursery => {
                cfg.old_layout = OldGenLayout::Unified(DeviceKind::Nvm);
                cfg.card_padding = false;
            }
            MemoryMode::KingsguardWrites => {
                cfg.old_layout = OldGenLayout::SplitDramNvm;
                cfg.card_padding = false;
                cfg.track_writes = true;
            }
            MemoryMode::Panthera => {
                cfg.old_layout = OldGenLayout::SplitDramNvm;
                cfg.card_padding = self.card_padding;
            }
        }
        cfg
    }

    /// The memory-system configuration (device capacities and specs).
    pub fn mem_config(&self) -> MemorySystemConfig {
        let mut cfg =
            MemorySystemConfig::with_capacities(self.dram_capacity(), self.nvm_capacity());
        cfg.static_power_scale = STATIC_POWER_TIMEBASE_SCALE;
        if let Some(spec) = &self.nvm_spec {
            cfg.nvm = spec.clone();
        }
        cfg
    }

    /// The placement policy for this mode.
    pub fn policy(&self) -> Box<dyn PlacementPolicy> {
        match self.mode {
            MemoryMode::DramOnly => Box::new(UnifiedPolicy { label: "dram-only" }),
            MemoryMode::Unmanaged => Box::new(UnifiedPolicy { label: "unmanaged" }),
            MemoryMode::KingsguardNursery => Box::new(UnifiedPolicy {
                label: "kingsguard-nursery",
            }),
            MemoryMode::KingsguardWrites => Box::new(WriteRationingPolicy),
            MemoryMode::Panthera => Box::new(PantheraPolicy {
                eager_promotion: self.eager_promotion,
                dynamic_migration: self.dynamic_migration,
            }),
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.executors == 0 {
            return Err(ConfigError::new("executors must be at least 1"));
        }
        if self.recovery == RecoveryPolicy::CheckpointEvery(0) {
            return Err(ConfigError::new(
                "recovery: CheckpointEvery interval must be at least 1",
            ));
        }
        if !self.costs.is_valid() {
            return Err(ConfigError::new(
                "costs: every per-byte / per-record charge must be non-negative",
            ));
        }
        self.heap_config().validate().map_err(ConfigError::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates_for_all_modes() {
        for mode in MemoryMode::ALL {
            SystemConfig::paper_default(mode)
                .validate()
                .unwrap_or_else(|e| {
                    panic!("{mode}: {e}");
                });
        }
    }

    #[test]
    fn capacities_split_by_ratio() {
        let c = SystemConfig::new(MemoryMode::Panthera, 120 * SIM_GB, 0.25);
        assert_eq!(c.dram_capacity(), 30 * SIM_GB);
        assert_eq!(c.nvm_capacity(), 90 * SIM_GB);
        let d = SystemConfig::new(MemoryMode::DramOnly, 120 * SIM_GB, 0.25);
        assert_eq!(d.dram_capacity(), 120 * SIM_GB);
        assert_eq!(d.nvm_capacity(), 0);
    }

    #[test]
    fn mode_layouts() {
        let layouts: Vec<OldGenLayout> = MemoryMode::ALL
            .iter()
            .map(|m| SystemConfig::paper_default(*m).heap_config().old_layout)
            .collect();
        assert_eq!(layouts[0], OldGenLayout::Unified(DeviceKind::Dram));
        assert!(matches!(layouts[1], OldGenLayout::Interleaved { .. }));
        assert_eq!(layouts[2], OldGenLayout::Unified(DeviceKind::Nvm));
        assert_eq!(layouts[3], OldGenLayout::SplitDramNvm);
        assert_eq!(layouts[4], OldGenLayout::SplitDramNvm);
    }

    #[test]
    fn nvm_spec_override_reaches_the_memory_system() {
        let mut c = SystemConfig::paper_default(MemoryMode::Panthera);
        c.nvm_spec = Some(DeviceSpec::stt_mram());
        assert_eq!(c.mem_config().nvm.read_latency_ns, 150.0);
        assert_eq!(
            SystemConfig::paper_default(MemoryMode::Panthera)
                .mem_config()
                .nvm
                .read_latency_ns,
            300.0,
            "default stays PCM-like"
        );
    }

    #[test]
    fn only_panthera_pads_cards_and_kw_tracks_writes() {
        for mode in MemoryMode::ALL {
            let cfg = SystemConfig::paper_default(mode).heap_config();
            assert_eq!(cfg.card_padding, mode == MemoryMode::Panthera, "{mode}");
            assert_eq!(
                cfg.track_writes,
                mode == MemoryMode::KingsguardWrites,
                "{mode}"
            );
        }
    }
}
