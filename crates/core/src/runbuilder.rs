//! The unified run entry point: one builder for every kind of run.
//!
//! [`RunBuilder`] collapses the old six-way entry-point surface
//! (`run_workload`, `try_run_workload{,_with_engine}`, `run_cluster`,
//! `run_cluster_default`, `run_cluster_faulted`) into one fluent chain:
//!
//! ```
//! use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
//! use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
//! use sparklet::DataRegistry;
//! use mheap::Payload;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let src = b.source("nums");
//! let xs = b.bind("xs", src.distinct());
//! b.persist(xs, StorageLevel::MemoryOnly);
//! b.loop_n(4, |b| b.action(xs, ActionKind::Count));
//! let (program, fns) = b.finish();
//!
//! let mut data = DataRegistry::new();
//! data.register("nums", (0..256).map(Payload::Long).collect());
//!
//! let cfg = SystemConfig::new(MemoryMode::Panthera, 2 * SIM_GB, 1.0 / 3.0);
//! let run = RunBuilder::new(&program, fns, data)
//!     .config(cfg)
//!     .run()
//!     .expect("valid configuration");
//! assert_eq!(run.results.len(), 4);
//! assert!(run.report.elapsed_s > 0.0);
//! ```
//!
//! Multi-executor and fault-injected runs need a *rebuild closure*
//! instead of a one-shot `(program, fns, data)` triple — user functions
//! and input registries cannot cross executor threads, so each executor
//! rebuilds them deterministically:
//!
//! ```
//! use panthera::{MemoryMode, RunBuilder, SystemConfig, SIM_GB};
//! # use sparklang::{ActionKind, ProgramBuilder};
//! # use sparklet::DataRegistry;
//! # use mheap::Payload;
//! # fn build() -> (sparklang::Program, sparklang::FnTable, DataRegistry) {
//! #     let mut b = ProgramBuilder::new("demo");
//! #     let src = b.source("nums");
//! #     let xs = b.bind("xs", src.distinct());
//! #     b.action(xs, ActionKind::Count);
//! #     let (program, fns) = b.finish();
//! #     let mut data = DataRegistry::new();
//! #     data.register("nums", (0..64).map(Payload::Long).collect());
//! #     (program, fns, data)
//! # }
//! let cfg = SystemConfig::new(MemoryMode::Panthera, 2 * SIM_GB, 1.0 / 3.0);
//! let run = RunBuilder::from_build(&build)
//!     .config(cfg)
//!     .executors(2)
//!     .run()
//!     .expect("valid configuration");
//! assert_eq!(run.per_executor.len(), 2);
//! ```

use crate::cluster::{self, FaultPlan};
use crate::config::SystemConfig;
use crate::error::RunError;
use crate::mode::MemoryMode;
use crate::report::RunReport;
use crate::simulate::run_single;
use sparklang::{FnTable, Program};
use sparklet::{ActionResult, DataRegistry, EngineConfig};

/// Everything a completed run produces, for any executor count.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// The run's measurements. For multi-executor runs this is the
    /// cluster-level aggregate: elapsed time is the barrier-synced
    /// maximum; energy, traffic, and GC work are summed.
    pub report: RunReport,
    /// `(variable name, result)` per executed action, in program order.
    pub results: Vec<(String, ActionResult)>,
    /// One sub-report per executor, in executor-id order. Empty for
    /// single-runtime runs (the top-level `report` is the only runtime).
    pub per_executor: Vec<RunReport>,
    /// Total modelled bytes deposited into the shared shuffle region —
    /// 0 for single-runtime runs and under
    /// [`sparklet::ShuffleTransport::Serde`].
    pub shared_region_bytes: u64,
}

/// Where the program, functions, and data come from.
enum Source<'a> {
    /// A one-shot triple: enough for exactly one single-runtime run.
    Once {
        program: &'a Program,
        fns: FnTable,
        data: DataRegistry,
    },
    /// A deterministic rebuild closure, callable once per executor
    /// incarnation (multi-executor, fault injection, replay).
    Rebuild(&'a (dyn Fn() -> (Program, FnTable, DataRegistry) + Sync)),
}

/// Where a dismantled [`RunBuilder`]'s program comes from — the public
/// mirror of the builder's internal source, handed out by
/// [`RunBuilder::into_parts`] so other drivers (the `panthera-jobs`
/// service) can execute a configured run themselves.
pub enum RunSource<'a> {
    /// A one-shot triple: enough for exactly one single-runtime run.
    Once {
        /// The driver program.
        program: &'a Program,
        /// Its user-function table.
        fns: FnTable,
        /// Its input datasets.
        data: DataRegistry,
    },
    /// A deterministic rebuild closure, callable once per executor
    /// incarnation.
    Rebuild(&'a (dyn Fn() -> (Program, FnTable, DataRegistry) + Sync)),
}

/// A [`RunBuilder`] taken apart into its configured pieces
/// ([`RunBuilder::into_parts`]). Everything the builder would have used
/// to run, available to an external driver.
pub struct RunParts<'a> {
    /// The program source.
    pub source: RunSource<'a>,
    /// The full system configuration.
    pub config: SystemConfig,
    /// The engine's execution knobs.
    pub engine: EngineConfig,
    /// The explicit host-thread bound, if one was set.
    pub host_threads: Option<usize>,
    /// The fault plan, if one was set.
    pub faults: Option<&'a FaultPlan>,
}

/// Builder for one simulated run — single-runtime, multi-executor, or
/// fault-injected (see the [module docs](self) for examples).
pub struct RunBuilder<'a> {
    source: Source<'a>,
    config: SystemConfig,
    engine: EngineConfig,
    host_threads: Option<usize>,
    faults: Option<&'a FaultPlan>,
}

impl<'a> RunBuilder<'a> {
    /// A run over a one-shot `(program, fns, data)` triple, in the
    /// paper's default configuration (Panthera mode, 64 GB heap, 1/3
    /// DRAM) until [`config`](Self::config) replaces it. One-shot
    /// sources drive exactly one runtime; asking for more executors (or
    /// faults) yields [`RunError::NeedsRebuild`] at [`run`](Self::run).
    pub fn new(program: &'a Program, fns: FnTable, data: DataRegistry) -> Self {
        RunBuilder {
            source: Source::Once { program, fns, data },
            config: SystemConfig::paper_default(MemoryMode::Panthera),
            engine: EngineConfig::default(),
            host_threads: None,
            faults: None,
        }
    }

    /// A run over a deterministic rebuild closure — required for
    /// multi-executor and fault-injected runs, where each executor
    /// thread (and each post-crash incarnation) rebuilds the program,
    /// functions, and data from scratch. Every call of `build` must
    /// produce the identical program and data.
    pub fn from_build(build: &'a (dyn Fn() -> (Program, FnTable, DataRegistry) + Sync)) -> Self {
        RunBuilder {
            source: Source::Rebuild(build),
            config: SystemConfig::paper_default(MemoryMode::Panthera),
            engine: EngineConfig::default(),
            host_threads: None,
            faults: None,
        }
    }

    /// Replace the full system configuration (mode, heap geometry,
    /// ablations, costs, region/off-heap stores, executors, recovery).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the engine's execution knobs (fusion, legacy copies,
    /// partition count). Cost, transport, and store settings are always
    /// taken from the system config, which is their single source of
    /// truth.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Executors in the simulated cluster (overrides the config's
    /// count). Values above 1 need a [`from_build`](Self::from_build)
    /// source.
    pub fn executors(mut self, n: u16) -> Self {
        self.config.executors = n;
        self
    }

    /// Bound how many executor threads compute concurrently. Changes
    /// wall-clock time only, never a simulated value; defaults to the
    /// `PANTHERA_HOST_THREADS` environment variable, then to one thread
    /// per executor.
    pub fn host_threads(mut self, n: usize) -> Self {
        self.host_threads = Some(n);
        self
    }

    /// Run under a deterministic fault plan (DESIGN.md §9): injected
    /// executor crashes, gather losses, and transient allocation
    /// failures. Needs a [`from_build`](Self::from_build) source — a
    /// restarted executor replays the program from scratch.
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The assembled system configuration, for inspection.
    pub fn peek_config(&self) -> &SystemConfig {
        &self.config
    }

    /// Dismantle the builder into its configured pieces without running.
    ///
    /// This is how alternative drivers — `RunBuilder::submit_to` in the
    /// `panthera-jobs` crate — reuse the builder's fluent surface while
    /// executing the run under their own scheduler.
    pub fn into_parts(self) -> RunParts<'a> {
        RunParts {
            source: match self.source {
                Source::Once { program, fns, data } => RunSource::Once { program, fns, data },
                Source::Rebuild(build) => RunSource::Rebuild(build),
            },
            config: self.config,
            engine: self.engine,
            host_threads: self.host_threads,
            faults: self.faults,
        }
    }

    /// Execute the run.
    ///
    /// # Errors
    ///
    /// [`RunError::Config`] for a constraint violation,
    /// [`RunError::NeedsRebuild`] for a multi-executor or fault-injected
    /// run over a one-shot source, and [`RunError::ExecutorCrash`] for
    /// an injected crash with recovery disabled.
    ///
    /// # Panics
    ///
    /// Panics if a simulated heap is exhausted mid-run, or if a
    /// rebuild closure is nondeterministic (executors then disagree on
    /// global action results — the cross-check fails rather than
    /// returning wrong data).
    pub fn run(self) -> Result<RunSummary, RunError> {
        let clustered = self.config.executors > 1 || self.faults.is_some();
        if !clustered {
            let (report, outcome) = match self.source {
                Source::Once { program, fns, data } => {
                    run_single(program, fns, data, &self.config, self.engine)?
                }
                Source::Rebuild(build) => {
                    let (program, fns, data) = build();
                    run_single(&program, fns, data, &self.config, self.engine)?
                }
            };
            return Ok(RunSummary {
                report,
                results: outcome.results,
                per_executor: Vec::new(),
                shared_region_bytes: 0,
            });
        }
        let Source::Rebuild(build) = self.source else {
            return Err(RunError::NeedsRebuild {
                executors: self.config.executors,
            });
        };
        let host_threads = self
            .host_threads
            .unwrap_or_else(|| cluster::host_threads_from_env(usize::from(self.config.executors)));
        let none = FaultPlan::none();
        let plan = self.faults.unwrap_or(&none);
        let outcome =
            cluster::run_cluster_inner(build, &self.config, self.engine, host_threads, plan)?;
        Ok(RunSummary {
            report: outcome.report,
            results: outcome.results,
            per_executor: outcome.per_executor,
            shared_region_bytes: outcome.shared_region_bytes,
        })
    }
}
