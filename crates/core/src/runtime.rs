//! The Panthera runtime: the JVM-side half of the system (Section 4.2).
//!
//! Implements [`sparklet::MemoryRuntime`] for every memory mode. The
//! Panthera-specific machinery:
//!
//! * **`rdd_alloc` wait state** (Section 4.2.1) — an instrumented call
//!   right before each materialization point sets a thread-local state
//!   with the RDD's tag; the *next allocation of an array longer than a
//!   threshold* is recognized as the RDD's backbone array and placed
//!   directly into the tagged space. Shorter arrays miss the wait state
//!   and take the ordinary young-generation path.
//! * **monitoring** — instrumented RDD method calls feed the GC's
//!   access-frequency table for major-GC re-assessment.
//! * **lineage propagation** — the engine's stage-start backward tag scan
//!   is enabled only under Panthera.

use crate::config::SystemConfig;
use crate::mode::MemoryMode;
use gc::{GcConfig, GcCoordinator};
use mheap::{Heap, MemTag, ObjId, ObjKind, Payload, RootSet};
use sparklang::ast::MemoryTag;
use sparklet::MemoryRuntime;

/// Convert an analysis tag into header `MEMORY_BITS`.
pub fn to_mem_tag(tag: Option<MemoryTag>) -> MemTag {
    match tag {
        Some(MemoryTag::Dram) => MemTag::Dram,
        Some(MemoryTag::Nvm) => MemTag::Nvm,
        None => MemTag::None,
    }
}

/// The runtime backing one simulated JVM.
#[derive(Debug)]
pub struct PantheraRuntime {
    heap: Heap,
    gc: GcCoordinator,
    mode: MemoryMode,
    /// The `rdd_alloc` wait state: `(rdd_id, tag)` armed by the
    /// instrumented call, consumed by the next large-array allocation.
    wait_state: Option<(u32, MemTag)>,
    large_array_elems: usize,
    monitor: bool,
}

impl PantheraRuntime {
    /// Build the runtime for a system configuration.
    ///
    /// # Errors
    ///
    /// Returns an error string if the configuration is invalid.
    pub fn new(config: &SystemConfig) -> Result<Self, String> {
        let mut heap = Heap::new(config.heap_config(), config.mem_config())?;
        heap.set_observer(config.observer.clone());
        let gc = GcCoordinator::with_config(
            config.policy(),
            GcConfig {
                verify: config.verify_heap,
                ..GcConfig::default()
            },
        );
        Ok(PantheraRuntime {
            heap,
            gc,
            mode: config.mode,
            wait_state: None,
            large_array_elems: config.large_array_elems,
            monitor: config.mode.is_semantic(),
        })
    }

    /// The mode this runtime runs in.
    pub fn mode(&self) -> MemoryMode {
        self.mode
    }

    /// The collector (stats, frequency table).
    pub fn gc(&self) -> &GcCoordinator {
        &self.gc
    }

    /// Mutable collector access (for tests and the public APIs).
    pub fn gc_mut(&mut self) -> &mut GcCoordinator {
        &mut self.gc
    }

    /// The instrumented native call `rdd_alloc(rdd, tag)`: arms the wait
    /// state and returns the bits that will be set on the RDD top object.
    pub fn rdd_alloc(&mut self, rdd_id: u32, tag: Option<MemoryTag>) -> MemTag {
        let bits = to_mem_tag(tag);
        if self.mode.is_semantic() && bits.is_tagged() {
            self.wait_state = Some((rdd_id, bits));
        }
        bits
    }

    /// Whether the wait state is currently armed (test hook).
    pub fn wait_state_armed(&self) -> bool {
        self.wait_state.is_some()
    }

    // ------------------------------------------------------------------
    // The two public APIs of Section 4.3
    // ------------------------------------------------------------------

    /// API 1 — *pretenure a data structure with a tag*: place `slots`
    /// array elements for `rdd_id` directly into the space named by `tag`.
    /// The tag can come from developer annotations or from a system-
    /// specific static analysis (the paper's Hadoop HashJoin example).
    pub fn api_pretenure(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        slots: usize,
        tag: MemTag,
    ) -> ObjId {
        self.gc
            .alloc_rdd_array(&mut self.heap, roots, rdd_id, slots, tag)
    }

    /// API 2 — *monitor a data structure*: track the number of calls made
    /// on it so the major GC can migrate it between DRAM and NVM when its
    /// access pattern is not statically predictable.
    pub fn api_monitor(&mut self, rdd_id: u32) {
        self.gc.record_rdd_call(&mut self.heap, rdd_id);
    }

    /// Run one minor collection now (e.g. to settle long-lived structures
    /// into the old generation in API-driven workloads).
    pub fn minor_gc(&mut self, roots: &RootSet) {
        self.gc.minor_gc(&mut self.heap, roots);
    }
}

impl MemoryRuntime for PantheraRuntime {
    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    fn alloc_record(&mut self, roots: &RootSet, kind: ObjKind, payload: Payload) -> ObjId {
        self.gc
            .alloc_young(&mut self.heap, roots, kind, MemTag::None, vec![], payload)
    }

    fn alloc_rdd_array(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        slots: usize,
        tag: Option<MemoryTag>,
    ) -> ObjId {
        // The instrumented rdd_alloc call right before the materialization
        // point...
        self.rdd_alloc(rdd_id, tag);
        // ...and the array allocation that may match the wait state.
        let armed = match self.wait_state {
            Some((armed_rdd, bits)) if armed_rdd == rdd_id && slots >= self.large_array_elems => {
                self.wait_state = None;
                Some(bits)
            }
            _ => None,
        };
        match armed {
            Some(bits) => self
                .gc
                .alloc_rdd_array(&mut self.heap, roots, rdd_id, slots, bits),
            None => {
                // No wait-state match: the array takes the ordinary path
                // (young generation, or the policy's default old space if
                // humongous). Non-semantic modes always land here.
                self.gc
                    .alloc_rdd_array(&mut self.heap, roots, rdd_id, slots, MemTag::None)
            }
        }
    }

    fn alloc_rdd_top(
        &mut self,
        roots: &RootSet,
        rdd_id: u32,
        array: ObjId,
        tag: Option<MemoryTag>,
    ) -> ObjId {
        // rdd_alloc sets the top object's MEMORY_BITS regardless of where
        // it currently lives; the root-task will move it (Section 4.2.2).
        let bits = if self.mode.is_semantic() {
            to_mem_tag(tag)
        } else {
            MemTag::None
        };
        self.gc.alloc_young(
            &mut self.heap,
            roots,
            ObjKind::RddTop { rdd_id },
            bits,
            vec![array],
            Payload::Unit,
        )
    }

    fn record_rdd_call(&mut self, rdd_id: u32) {
        if self.monitor {
            self.gc.record_rdd_call(&mut self.heap, rdd_id);
        }
    }

    fn lineage_propagation(&self) -> bool {
        self.mode.is_semantic()
    }

    fn stage_boundary(&mut self, roots: &RootSet) {
        self.gc.maybe_major(&mut self.heap, roots);
    }

    fn force_major(&mut self, roots: &RootSet) {
        self.gc.major_gc(&mut self.heap, roots);
    }

    fn monitored_calls(&self) -> u64 {
        self.gc.freq().total_monitored()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SIM_GB;
    use mheap::SpaceId;

    fn runtime(mode: MemoryMode) -> PantheraRuntime {
        let mut cfg = SystemConfig::new(mode, 2 * SIM_GB, 1.0 / 3.0);
        cfg.large_array_elems = 8;
        PantheraRuntime::new(&cfg).unwrap()
    }

    #[test]
    fn wait_state_matches_large_arrays_only() {
        let mut rt = runtime(MemoryMode::Panthera);
        let roots = RootSet::new();
        // Large array with a tag: goes to NVM old space.
        let big = rt.alloc_rdd_array(&roots, 1, 64, Some(MemoryTag::Nvm));
        let nvm = rt.heap().old_nvm().unwrap();
        assert_eq!(rt.heap().obj(big).space, SpaceId::Old(nvm));
        assert!(!rt.wait_state_armed(), "wait state consumed");

        // Small array: misses the threshold, stays young despite the tag.
        let small = rt.alloc_rdd_array(&roots, 2, 4, Some(MemoryTag::Nvm));
        assert!(rt.heap().obj(small).space.is_young());
    }

    #[test]
    fn baselines_ignore_tags() {
        let mut rt = runtime(MemoryMode::Unmanaged);
        let roots = RootSet::new();
        let arr = rt.alloc_rdd_array(&roots, 1, 64, Some(MemoryTag::Dram));
        // Unified old space 0, regardless of the DRAM tag.
        assert_eq!(rt.heap().obj(arr).space, SpaceId::Old(mheap::OldSpaceId(0)));
        assert_eq!(rt.heap().obj(arr).tag, MemTag::None);
        assert!(!rt.lineage_propagation());
        rt.record_rdd_call(1);
        assert_eq!(rt.monitored_calls(), 0, "no monitoring outside Panthera");
    }

    #[test]
    fn panthera_monitors_calls() {
        let mut rt = runtime(MemoryMode::Panthera);
        rt.record_rdd_call(3);
        rt.record_rdd_call(3);
        assert_eq!(rt.monitored_calls(), 2);
    }

    #[test]
    fn top_objects_carry_memory_bits() {
        let mut rt = runtime(MemoryMode::Panthera);
        let roots = RootSet::new();
        let arr = rt.alloc_rdd_array(&roots, 1, 64, Some(MemoryTag::Dram));
        let top = rt.alloc_rdd_top(&roots, 1, arr, Some(MemoryTag::Dram));
        assert_eq!(rt.heap().obj(top).tag, MemTag::Dram);
        assert!(rt.heap().obj(top).space.is_young(), "tops start young");
        assert_eq!(rt.heap().obj(top).refs, vec![arr]);
    }

    #[test]
    fn public_apis_work() {
        let mut rt = runtime(MemoryMode::Panthera);
        let roots = RootSet::new();
        let arr = rt.api_pretenure(&roots, 9, 32, MemTag::Dram);
        let dram = rt.heap().old_dram().unwrap();
        assert_eq!(rt.heap().obj(arr).space, SpaceId::Old(dram));
        rt.api_monitor(9);
        assert_eq!(rt.gc().freq().calls(9), 1);
    }
}
