//! The end-to-end simulation driver: analyze, run, report.
//!
//! [`crate::RunBuilder`] is the supported entry point; the free functions
//! here are deprecated shims kept so pre-builder callers compile during
//! the transition.

use crate::config::{ConfigError, SystemConfig};
use crate::report::RunReport;
use crate::runtime::PantheraRuntime;
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, Engine, EngineConfig, MemoryRuntime, RunOutcome, StageCursor};

/// The single-runtime driver behind [`crate::RunBuilder`] and the
/// deprecated free-function shims: validate, analyze, run, report.
pub(crate) fn run_single(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    mut engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    config.validate()?;
    // The system config is the single source of truth for data-movement
    // costs, shuffle transport, and the region/off-heap stores.
    engine_config.costs = config.costs;
    engine_config.transport = config.transport;
    engine_config.offheap_cache = config.offheap_cache;
    engine_config.region_alloc = config.region_alloc;
    if config.executors > 1 {
        return Err(ConfigError::new(format!(
            "config asks for {} executors; the single-runtime entry points run exactly one — \
             drive multi-executor runs through RunBuilder::from_build",
            config.executors
        )));
    }
    let plan = if config.mode.is_semantic() {
        analyze(program).plan
    } else {
        InstrumentationPlan::default()
    };
    let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
    let mut engine = Engine::with_config(runtime, fns, data, engine_config);
    let outcome = engine.run(program, &plan);
    let monitored = engine.runtime().monitored_calls();
    let report = RunReport::collect(
        &program.name,
        config.mode.label(),
        engine.runtime().heap(),
        engine.runtime().gc(),
        outcome.stats,
        monitored,
    );
    Ok((report, outcome))
}

/// A paused single-runtime run: the exact validate/analyze/build setup
/// of the [`crate::RunBuilder`] single-runtime path, wrapped around a
/// resumable [`StageCursor`] so an external scheduler (the
/// `panthera-jobs` service) can interleave this run's statement-stages
/// with other jobs'.
///
/// Driving a `SingleCursor` to completion produces the same
/// [`RunReport`] and action results, bit for bit, as
/// `RunBuilder::new(..).config(..).run()` — the setup code is shared, the
/// cursor replays the engine's own statement loop, and nothing about
/// *when* stages run (in host time) touches the simulated clock.
pub struct SingleCursor {
    cursor: StageCursor<PantheraRuntime>,
    workload: String,
    mode_label: &'static str,
}

impl SingleCursor {
    /// Validate `config`, build the runtime and engine exactly as the
    /// one-shot single-runtime path does, and pause before the first
    /// statement-stage.
    ///
    /// # Errors
    ///
    /// The first violated configuration constraint; asking for more than
    /// one executor is a constraint violation here just as it is in
    /// [`run_single`].
    pub fn start(
        program: Program,
        fns: FnTable,
        data: DataRegistry,
        config: &SystemConfig,
        mut engine_config: EngineConfig,
    ) -> Result<SingleCursor, ConfigError> {
        config.validate()?;
        engine_config.costs = config.costs;
        engine_config.transport = config.transport;
        engine_config.offheap_cache = config.offheap_cache;
        engine_config.region_alloc = config.region_alloc;
        if config.executors > 1 {
            return Err(ConfigError::new(format!(
                "config asks for {} executors; a stage cursor drives exactly one — \
                 the job service runs multi-executor jobs atomically instead",
                config.executors
            )));
        }
        let plan = if config.mode.is_semantic() {
            analyze(&program).plan
        } else {
            InstrumentationPlan::default()
        };
        let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
        let engine = Engine::with_config(runtime, fns, data, engine_config);
        let workload = program.name.clone();
        Ok(SingleCursor {
            cursor: StageCursor::new(engine, program, plan),
            workload,
            mode_label: config.mode.label(),
        })
    }

    /// Execute the next statement-stage; `false` once the schedule is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        self.cursor.step()
    }

    /// Whether every stage has executed.
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Stages still to run.
    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }

    /// Total statement-stages in the schedule.
    pub fn total_stages(&self) -> usize {
        self.cursor.total_stages()
    }

    /// The job's simulated clock, in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.cursor.now_ns()
    }

    /// Finish the run (end-of-run sweeps) and collect the report, exactly
    /// as the one-shot path does.
    ///
    /// # Panics
    ///
    /// Panics if stages remain.
    pub fn finish(self) -> (RunReport, RunOutcome) {
        let (engine, outcome) = self.cursor.finish();
        let monitored = engine.runtime().monitored_calls();
        let report = RunReport::collect(
            &self.workload,
            self.mode_label,
            engine.runtime().heap(),
            engine.runtime().gc(),
            outcome.stats,
            monitored,
        );
        (report, outcome)
    }
}

/// Run `program` under `config`, returning the measurements and the
/// action results — or a [`ConfigError`] if the configuration violates a
/// constraint (e.g. a DRAM ratio too small to hold the nursery).
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Panics if the simulated heap is exhausted mid-run — a mis-sized
/// experiment, not a runtime condition a caller should handle.
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).run()`"
)]
pub fn try_run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    run_single(program, fns, data, config, EngineConfig::default())
}

/// [`try_run_workload`] with explicit engine cost knobs.
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Same mid-run conditions as [`try_run_workload`].
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).engine(ec).run()`"
)]
pub fn try_run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    run_single(program, fns, data, config, engine_config)
}

/// Panicking convenience wrapper over the single-runtime driver, for
/// drivers and tests whose configurations are known-good.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulated heap is
/// exhausted.
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).run()`"
)]
pub fn run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> (RunReport, RunOutcome) {
    run_single(program, fns, data, config, EngineConfig::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Panicking convenience wrapper with explicit engine cost knobs.
///
/// # Panics
///
/// Same conditions as [`run_workload`].
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).engine(ec).run()`"
)]
pub fn run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> (RunReport, RunOutcome) {
    run_single(program, fns, data, config, engine_config).unwrap_or_else(|e| panic!("{e}"))
}
