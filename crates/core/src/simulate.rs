//! The end-to-end simulation driver: analyze, run, report.

use crate::config::{ConfigError, SystemConfig};
use crate::report::RunReport;
use crate::runtime::PantheraRuntime;
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, Engine, EngineConfig, MemoryRuntime, RunOutcome};

/// Run `program` under `config`, returning the measurements and the
/// action results — or a [`ConfigError`] if the configuration violates a
/// constraint (e.g. a DRAM ratio too small to hold the nursery).
///
/// Under Panthera the program is statically analyzed and instrumented;
/// the baselines run it unmodified.
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Panics if the simulated heap is exhausted mid-run — a mis-sized
/// experiment, not a runtime condition a caller should handle.
pub fn try_run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    try_run_workload_with_engine(program, fns, data, config, EngineConfig::default())
}

/// [`try_run_workload`] with explicit engine cost knobs — e.g. to disable
/// narrow-stage fusion ([`EngineConfig::fuse_narrow`]) when checking that
/// the fused and stage-at-a-time execution paths report identical
/// simulated results.
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Same mid-run conditions as [`try_run_workload`].
pub fn try_run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    mut engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    config.validate()?;
    // The system config is the single source of truth for data-movement
    // costs, shuffle transport, and the off-heap region.
    engine_config.costs = config.costs;
    engine_config.transport = config.transport;
    engine_config.offheap_cache = config.offheap_cache;
    if config.executors > 1 {
        return Err(ConfigError::new(format!(
            "config asks for {} executors; the single-runtime entry points run exactly one — \
             drive multi-executor runs through the panthera-cluster crate",
            config.executors
        )));
    }
    let plan = if config.mode.is_semantic() {
        analyze(program).plan
    } else {
        InstrumentationPlan::default()
    };
    let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
    let mut engine = Engine::with_config(runtime, fns, data, engine_config);
    let outcome = engine.run(program, &plan);
    let monitored = engine.runtime().monitored_calls();
    let report = RunReport::collect(
        &program.name,
        config.mode.label(),
        engine.runtime().heap(),
        engine.runtime().gc(),
        outcome.stats,
        monitored,
    );
    Ok((report, outcome))
}

/// Panicking convenience wrapper over [`try_run_workload`], for drivers
/// and tests whose configurations are known-good.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulated heap is
/// exhausted.
pub fn run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> (RunReport, RunOutcome) {
    try_run_workload(program, fns, data, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Panicking convenience wrapper over [`try_run_workload_with_engine`].
///
/// # Panics
///
/// Same conditions as [`run_workload`].
pub fn run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> (RunReport, RunOutcome) {
    try_run_workload_with_engine(program, fns, data, config, engine_config)
        .unwrap_or_else(|e| panic!("{e}"))
}
