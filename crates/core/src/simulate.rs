//! The end-to-end simulation driver: analyze, run, report.

use crate::config::SystemConfig;
use crate::report::RunReport;
use crate::runtime::PantheraRuntime;
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, Engine, EngineConfig, MemoryRuntime, RunOutcome};

/// Run `program` under `config`, returning the measurements and the
/// action results.
///
/// Under Panthera the program is statically analyzed and instrumented; the
/// baselines run it unmodified.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulated heap is
/// exhausted — both indicate a mis-sized experiment, not a runtime
/// condition a caller should handle.
pub fn run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> (RunReport, RunOutcome) {
    run_workload_with_engine(program, fns, data, config, EngineConfig::default())
}

/// [`run_workload`] with explicit engine cost knobs — e.g. to disable
/// narrow-stage fusion ([`EngineConfig::fuse_narrow`]) when checking that
/// the fused and stage-at-a-time execution paths report identical
/// simulated results.
///
/// # Panics
///
/// Same conditions as [`run_workload`].
pub fn run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> (RunReport, RunOutcome) {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid config: {e}"));
    let plan = if config.mode.is_semantic() {
        analyze(program).plan
    } else {
        InstrumentationPlan::default()
    };
    let runtime = PantheraRuntime::new(config).expect("validated config");
    let mut engine = Engine::with_config(runtime, fns, data, engine_config);
    let outcome = engine.run(program, &plan);
    let monitored = engine.runtime().monitored_calls();
    let report = RunReport::collect(
        &program.name,
        config.mode.label(),
        engine.runtime().heap(),
        engine.runtime().gc(),
        outcome.stats,
        monitored,
    );
    (report, outcome)
}
