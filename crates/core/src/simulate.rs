//! The end-to-end simulation driver: analyze, run, report.
//!
//! [`crate::RunBuilder`] is the supported entry point; the free functions
//! here are deprecated shims kept so pre-builder callers compile during
//! the transition.

use crate::config::{ConfigError, SystemConfig};
use crate::report::RunReport;
use crate::runtime::PantheraRuntime;
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, Engine, EngineConfig, MemoryRuntime, RunOutcome};

/// The single-runtime driver behind [`crate::RunBuilder`] and the
/// deprecated free-function shims: validate, analyze, run, report.
pub(crate) fn run_single(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    mut engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    config.validate()?;
    // The system config is the single source of truth for data-movement
    // costs, shuffle transport, and the region/off-heap stores.
    engine_config.costs = config.costs;
    engine_config.transport = config.transport;
    engine_config.offheap_cache = config.offheap_cache;
    engine_config.region_alloc = config.region_alloc;
    if config.executors > 1 {
        return Err(ConfigError::new(format!(
            "config asks for {} executors; the single-runtime entry points run exactly one — \
             drive multi-executor runs through RunBuilder::from_build",
            config.executors
        )));
    }
    let plan = if config.mode.is_semantic() {
        analyze(program).plan
    } else {
        InstrumentationPlan::default()
    };
    let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
    let mut engine = Engine::with_config(runtime, fns, data, engine_config);
    let outcome = engine.run(program, &plan);
    let monitored = engine.runtime().monitored_calls();
    let report = RunReport::collect(
        &program.name,
        config.mode.label(),
        engine.runtime().heap(),
        engine.runtime().gc(),
        outcome.stats,
        monitored,
    );
    Ok((report, outcome))
}

/// Run `program` under `config`, returning the measurements and the
/// action results — or a [`ConfigError`] if the configuration violates a
/// constraint (e.g. a DRAM ratio too small to hold the nursery).
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Panics if the simulated heap is exhausted mid-run — a mis-sized
/// experiment, not a runtime condition a caller should handle.
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).run()`"
)]
pub fn try_run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    run_single(program, fns, data, config, EngineConfig::default())
}

/// [`try_run_workload`] with explicit engine cost knobs.
///
/// # Errors
///
/// The first violated configuration constraint.
///
/// # Panics
///
/// Same mid-run conditions as [`try_run_workload`].
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).engine(ec).run()`"
)]
pub fn try_run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    run_single(program, fns, data, config, engine_config)
}

/// Panicking convenience wrapper over the single-runtime driver, for
/// drivers and tests whose configurations are known-good.
///
/// # Panics
///
/// Panics if the configuration is invalid or the simulated heap is
/// exhausted.
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).run()`"
)]
pub fn run_workload(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
) -> (RunReport, RunOutcome) {
    run_single(program, fns, data, config, EngineConfig::default())
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Panicking convenience wrapper with explicit engine cost knobs.
///
/// # Panics
///
/// Same conditions as [`run_workload`].
#[deprecated(
    since = "0.2.0",
    note = "use `RunBuilder::new(program, fns, data).engine(ec).run()`"
)]
pub fn run_workload_with_engine(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    engine_config: EngineConfig,
) -> (RunReport, RunOutcome) {
    run_single(program, fns, data, config, engine_config).unwrap_or_else(|e| panic!("{e}"))
}
