//! The end-to-end simulation driver: analyze, run, report.
//!
//! [`crate::RunBuilder`] is the supported entry point; [`SingleCursor`]
//! exposes the same single-runtime path paused at every stage barrier for
//! external schedulers (the job service, the streaming driver).

use crate::config::{ConfigError, SystemConfig};
use crate::report::RunReport;
use crate::runtime::PantheraRuntime;
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, Engine, EngineConfig, MemoryRuntime, RunOutcome, StageCursor};

/// The single-runtime driver behind [`crate::RunBuilder`] and the
/// deprecated free-function shims: validate, analyze, run, report.
pub(crate) fn run_single(
    program: &Program,
    fns: FnTable,
    data: DataRegistry,
    config: &SystemConfig,
    mut engine_config: EngineConfig,
) -> Result<(RunReport, RunOutcome), ConfigError> {
    config.validate()?;
    // The system config is the single source of truth for data-movement
    // costs, shuffle transport, and the region/off-heap stores.
    engine_config.costs = config.costs;
    engine_config.transport = config.transport;
    engine_config.offheap_cache = config.offheap_cache;
    engine_config.region_alloc = config.region_alloc;
    if config.executors > 1 {
        return Err(ConfigError::new(format!(
            "config asks for {} executors; the single-runtime entry points run exactly one — \
             drive multi-executor runs through RunBuilder::from_build",
            config.executors
        )));
    }
    let plan = if config.mode.is_semantic() {
        analyze(program).plan
    } else {
        InstrumentationPlan::default()
    };
    let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
    let mut engine = Engine::with_config(runtime, fns, data, engine_config);
    let outcome = engine.run(program, &plan);
    let monitored = engine.runtime().monitored_calls();
    let report = RunReport::collect(
        &program.name,
        config.mode.label(),
        engine.runtime().heap(),
        engine.runtime().gc(),
        outcome.stats,
        monitored,
    );
    Ok((report, outcome))
}

/// A paused single-runtime run: the exact validate/analyze/build setup
/// of the [`crate::RunBuilder`] single-runtime path, wrapped around a
/// resumable [`StageCursor`] so an external scheduler (the
/// `panthera-jobs` service) can interleave this run's statement-stages
/// with other jobs'.
///
/// Driving a `SingleCursor` to completion produces the same
/// [`RunReport`] and action results, bit for bit, as
/// `RunBuilder::new(..).config(..).run()` — the setup code is shared, the
/// cursor replays the engine's own statement loop, and nothing about
/// *when* stages run (in host time) touches the simulated clock.
pub struct SingleCursor {
    cursor: StageCursor<PantheraRuntime>,
    workload: String,
    mode_label: &'static str,
}

impl SingleCursor {
    /// Validate `config`, build the runtime and engine exactly as the
    /// one-shot single-runtime path does, and pause before the first
    /// statement-stage.
    ///
    /// # Errors
    ///
    /// The first violated configuration constraint; asking for more than
    /// one executor is a constraint violation here just as it is in
    /// [`run_single`].
    pub fn start(
        program: Program,
        fns: FnTable,
        data: DataRegistry,
        config: &SystemConfig,
        engine_config: EngineConfig,
    ) -> Result<SingleCursor, ConfigError> {
        let plan = if config.mode.is_semantic() {
            analyze(&program).plan
        } else {
            InstrumentationPlan::default()
        };
        Self::start_with_plan(program, fns, data, config, engine_config, plan)
    }

    /// [`SingleCursor::start`] with an explicit instrumentation plan
    /// instead of the freshly analyzed one — the hook a re-tagging policy
    /// uses to treat the static tags as priors and override them (e.g.
    /// the oracle pre-tags every site from a prior observation pass)
    /// before the run begins.
    ///
    /// # Errors
    ///
    /// Same constraints as [`SingleCursor::start`].
    pub fn start_with_plan(
        program: Program,
        fns: FnTable,
        data: DataRegistry,
        config: &SystemConfig,
        mut engine_config: EngineConfig,
        plan: InstrumentationPlan,
    ) -> Result<SingleCursor, ConfigError> {
        config.validate()?;
        engine_config.costs = config.costs;
        engine_config.transport = config.transport;
        engine_config.offheap_cache = config.offheap_cache;
        engine_config.region_alloc = config.region_alloc;
        if config.executors > 1 {
            return Err(ConfigError::new(format!(
                "config asks for {} executors; a stage cursor drives exactly one — \
                 the job service runs multi-executor jobs atomically instead",
                config.executors
            )));
        }
        let runtime = PantheraRuntime::new(config).map_err(ConfigError::new)?;
        let engine = Engine::with_config(runtime, fns, data, engine_config);
        let workload = program.name.clone();
        Ok(SingleCursor {
            cursor: StageCursor::new(engine, program, plan),
            workload,
            mode_label: config.mode.label(),
        })
    }

    /// Execute the next statement-stage; `false` once the schedule is
    /// exhausted.
    pub fn step(&mut self) -> bool {
        self.cursor.step()
    }

    /// Whether every stage has executed.
    pub fn is_done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Stages still to run.
    pub fn remaining(&self) -> usize {
        self.cursor.remaining()
    }

    /// Total statement-stages in the schedule.
    pub fn total_stages(&self) -> usize {
        self.cursor.total_stages()
    }

    /// The job's simulated clock, in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.cursor.now_ns()
    }

    /// The paused runtime, for reading heap, GC, and frequency state at a
    /// stage barrier.
    pub fn runtime(&self) -> &PantheraRuntime {
        self.cursor.engine().runtime()
    }

    /// Mutable runtime access at a stage barrier — how an online policy
    /// pins per-RDD tag overrides on the collector between batches.
    pub fn runtime_mut(&mut self) -> &mut PantheraRuntime {
        self.cursor.engine_mut().runtime_mut()
    }

    /// The runtime RDD graph built so far (RDD ids ↔ variable labels).
    pub fn rdds(&self) -> &[sparklet::RddNode] {
        self.cursor.engine().rdds()
    }

    /// Mutable access to the instrumentation plan, to override static
    /// tags of sites that have not executed yet.
    pub fn plan_mut(&mut self) -> &mut InstrumentationPlan {
        self.cursor.plan_mut()
    }

    /// Force a full collection with the engine's current roots, applying
    /// any pinned tag overrides via the dynamic re-assessment.
    pub fn force_major(&mut self) {
        self.cursor.engine_mut().force_major();
    }

    /// Finish the run (end-of-run sweeps) and collect the report, exactly
    /// as the one-shot path does.
    ///
    /// # Panics
    ///
    /// Panics if stages remain.
    pub fn finish(self) -> (RunReport, RunOutcome) {
        let (engine, outcome) = self.cursor.finish();
        let monitored = engine.runtime().monitored_calls();
        let report = RunReport::collect(
            &self.workload,
            self.mode_label,
            engine.runtime().heap(),
            engine.runtime().gc(),
            outcome.stats,
            monitored,
        );
        (report, outcome)
    }
}
