//! The unified run-error type for every entry point.
//!
//! [`RunError`] is what [`crate::RunBuilder::run`] returns: one
//! `#[non_exhaustive]` enum covering configuration violations, cluster
//! failures, and builder misuse, so callers match on typed variants
//! instead of parsing panic payloads or error strings. The legacy
//! `run_cluster*` entry points keep their [`ConfigError`] signatures by
//! flattening these variants to text.

use crate::config::ConfigError;
use std::fmt;

/// Everything that can keep a simulated run from launching or completing.
///
/// Marked `#[non_exhaustive]`: future failure modes (new recovery
/// policies, new transports) become new variants without a breaking
/// release, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The configuration violates a constraint (see
    /// [`crate::SystemConfig::validate`]).
    Config(ConfigError),
    /// An injected executor crash fired with recovery disabled: the
    /// exchange was poisoned and every executor unwound.
    ExecutorCrash {
        /// The executor that crashed.
        exec: u16,
        /// The statement barrier at which the crash fired.
        barrier: u64,
    },
    /// A multi-executor (or fault-injected) run was requested from a
    /// single-shot `(program, fns, data)` source. Executor threads each
    /// rebuild the program and data from scratch — user functions and
    /// payload registries cannot cross threads — so these runs need
    /// [`crate::RunBuilder::from_build`] with a deterministic rebuild
    /// closure.
    NeedsRebuild {
        /// How many executors the configuration asked for.
        executors: u16,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "{e}"),
            RunError::ExecutorCrash { exec, barrier } => write!(
                f,
                "executor {exec} crashed at barrier {barrier} and recovery is disabled"
            ),
            RunError::NeedsRebuild { executors } => write!(
                f,
                "config asks for {executors} executors (or fault injection); multi-executor \
                 runs need RunBuilder::from_build with a deterministic rebuild closure, \
                 because user functions and input data cannot cross executor threads"
            ),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_errors_carry_their_source() {
        let e = RunError::from(ConfigError::new("executors must be at least 1"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("executors must be at least 1"));
    }

    #[test]
    fn crash_and_rebuild_variants_render() {
        let c = RunError::ExecutorCrash {
            exec: 2,
            barrier: 7,
        };
        assert!(c.to_string().contains("executor 2"));
        assert!(c.to_string().contains("barrier 7"));
        let r = RunError::NeedsRebuild { executors: 4 };
        assert!(r.to_string().contains("from_build"));
        assert!(std::error::Error::source(&r).is_none());
    }
}
