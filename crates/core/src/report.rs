//! Run reports: the measurements every figure and table is built from.

use gc::{GcStats, PauseStats};
use hybridmem::{AccessKind, DeviceKind, EnergyBreakdown, MemoryStats, Phase, TrafficMeter};
use mheap::HeapStats;
use sparklet::ExecStats;

/// Fault-tolerance counters for one run (or one executor of a cluster
/// run): what was injected, what was lost, and what recovery cost in
/// virtual time and NVM traffic. All zeros in a fault-free run without
/// checkpointing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Injected executor crashes that fired.
    pub executor_crashes: u64,
    /// Injected exchange message losses (charged as retransmit latency).
    pub messages_lost: u64,
    /// Injected transient allocation failures (charged as retries).
    pub alloc_faults: u64,
    /// Materialized partitions lost when an executor's heap died.
    pub partitions_lost: u64,
    /// Partitions rebuilt by lineage recomputation during replay.
    pub partitions_recomputed: u64,
    /// Partitions restored from NVM checkpoints instead of recomputed.
    pub partitions_restored: u64,
    /// Shuffle stages re-executed during replay.
    pub stages_recomputed: u64,
    /// Checkpoint snapshots written to the durable NVM store.
    pub checkpoint_writes: u64,
    /// Modelled bytes written to NVM checkpoints.
    pub checkpoint_bytes: u64,
    /// Modelled bytes read back from NVM checkpoints.
    pub restore_bytes: u64,
    /// Journaled operations (exchange deposits, checkpoint saves) that a
    /// replay re-issued and the journal validated as no-ops.
    pub journal_noops: u64,
    /// Torn journal entries (crash between `begin` and `commit`) found
    /// and rolled forward during replay.
    pub journal_torn: u64,
    /// Virtual time spent recovering (crash → replay caught up), seconds.
    pub recovery_s: f64,
}

impl RecoveryStats {
    /// Serialize as a JSON object (field order fixed).
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("executor_crashes", Json::UInt(self.executor_crashes)),
            ("messages_lost", Json::UInt(self.messages_lost)),
            ("alloc_faults", Json::UInt(self.alloc_faults)),
            ("partitions_lost", Json::UInt(self.partitions_lost)),
            (
                "partitions_recomputed",
                Json::UInt(self.partitions_recomputed),
            ),
            ("partitions_restored", Json::UInt(self.partitions_restored)),
            ("stages_recomputed", Json::UInt(self.stages_recomputed)),
            ("checkpoint_writes", Json::UInt(self.checkpoint_writes)),
            ("checkpoint_bytes", Json::UInt(self.checkpoint_bytes)),
            ("restore_bytes", Json::UInt(self.restore_bytes)),
            ("journal_noops", Json::UInt(self.journal_noops)),
            ("journal_torn", Json::UInt(self.journal_torn)),
            ("recovery_s", Json::Num(self.recovery_s)),
        ])
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Memory mode label.
    pub mode: String,
    /// Workload name.
    pub workload: String,
    /// Total simulated elapsed time, seconds.
    pub elapsed_s: f64,
    /// Mutator (computation) time, seconds — Figure 5's lower bar.
    pub mutator_s: f64,
    /// Minor-GC time, seconds.
    pub minor_gc_s: f64,
    /// Major-GC time, seconds.
    pub major_gc_s: f64,
    /// Memory energy breakdown, joules.
    pub energy: EnergyBreakdown,
    /// Collector counters.
    pub gc: GcStats,
    /// Heap counters.
    pub heap: HeapStats,
    /// Engine counters.
    pub exec: ExecStats,
    /// Monitored RDD method calls (Table 5).
    pub monitored_calls: u64,
    /// Bytes moved on each device `[dram, nvm]`.
    pub device_bytes: [u64; 2],
    /// Windowed traffic for bandwidth plots (Figure 8).
    pub traffic: TrafficMeter,
    /// Full per-phase access counters.
    pub mem: MemoryStats,
    /// Individual minor-pause durations.
    pub minor_pauses: PauseStats,
    /// Individual major-pause durations.
    pub major_pauses: PauseStats,
    /// Fault-injection and recovery counters (all zero when no faults
    /// were injected and no checkpoints taken).
    pub recovery: RecoveryStats,
}

impl RunReport {
    /// Total GC time, seconds.
    pub fn gc_s(&self) -> f64 {
        self.minor_gc_s + self.major_gc_s
    }

    /// Total memory energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.energy.total_j()
    }

    /// Elapsed time relative to a baseline run.
    pub fn time_vs(&self, baseline: &RunReport) -> f64 {
        self.elapsed_s / baseline.elapsed_s
    }

    /// Energy relative to a baseline run.
    pub fn energy_vs(&self, baseline: &RunReport) -> f64 {
        self.energy_j() / baseline.energy_j()
    }

    /// GC time relative to a baseline run.
    pub fn gc_time_vs(&self, baseline: &RunReport) -> f64 {
        self.gc_s() / baseline.gc_s()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:<20} time {:>8.3}s (mutator {:>7.3}s, minor {:>7.3}s, major {:>7.3}s)  \
             energy {:>8.2}J  minor GCs {:<4} major GCs {:<3} migrated RDDs {}",
            self.workload,
            self.mode,
            self.elapsed_s,
            self.mutator_s,
            self.minor_gc_s,
            self.major_gc_s,
            self.energy_j(),
            self.gc.minor_count,
            self.gc.major_count,
            self.gc.rdds_migrated,
        )
    }

    /// Build a report from a finished runtime + engine.
    pub fn collect(
        workload: &str,
        mode: &str,
        heap: &mheap::Heap,
        gc: &gc::GcCoordinator,
        exec: ExecStats,
        monitored_calls: u64,
    ) -> RunReport {
        let mem = heap.mem();
        let clock = mem.clock();
        const S: f64 = 1e9;
        RunReport {
            mode: mode.to_string(),
            workload: workload.to_string(),
            elapsed_s: clock.now_ns() / S,
            mutator_s: clock.mutator_ns() / S,
            minor_gc_s: clock.phase_ns(Phase::MinorGc) / S,
            major_gc_s: clock.phase_ns(Phase::MajorGc) / S,
            energy: mem.energy(),
            gc: *gc.stats(),
            heap: *heap.stats(),
            exec,
            monitored_calls,
            device_bytes: [
                mem.stats().total_device_bytes(DeviceKind::Dram),
                mem.stats().total_device_bytes(DeviceKind::Nvm),
            ],
            traffic: mem.meter().clone(),
            mem: mem.stats().clone(),
            minor_pauses: gc.minor_pauses().clone(),
            major_pauses: gc.major_pauses().clone(),
            recovery: RecoveryStats::default(),
        }
    }

    /// Merge per-executor reports into one cluster report: elapsed time is
    /// the straggler's (stage barriers make every executor finish at the
    /// cluster-wide max), every counter, energy term, and phase time is
    /// summed across executors, and pause distributions are concatenated
    /// in executor-id order. Aggregating a single report returns it
    /// unchanged, so an `E = 1` cluster aggregate is bit-identical to the
    /// legacy single-runtime report.
    ///
    /// # Panics
    ///
    /// Panics if `reports` is empty.
    pub fn aggregate(reports: &[RunReport]) -> RunReport {
        let mut agg = reports[0].clone();
        for r in &reports[1..] {
            agg.elapsed_s = agg.elapsed_s.max(r.elapsed_s);
            agg.mutator_s += r.mutator_s;
            agg.minor_gc_s += r.minor_gc_s;
            agg.major_gc_s += r.major_gc_s;
            agg.energy.dram_static_j += r.energy.dram_static_j;
            agg.energy.nvm_static_j += r.energy.nvm_static_j;
            agg.energy.dram_dynamic_j += r.energy.dram_dynamic_j;
            agg.energy.nvm_dynamic_j += r.energy.nvm_dynamic_j;
            agg.gc.minor_count += r.gc.minor_count;
            agg.gc.major_count += r.gc.major_count;
            agg.gc.survivor_copies += r.gc.survivor_copies;
            agg.gc.tenured_promotions += r.gc.tenured_promotions;
            agg.gc.eager_promotions += r.gc.eager_promotions;
            agg.gc.promotion_fallbacks += r.gc.promotion_fallbacks;
            agg.gc.migration_fallbacks += r.gc.migration_fallbacks;
            agg.gc.young_freed += r.gc.young_freed;
            agg.gc.old_freed += r.gc.old_freed;
            agg.gc.cards_scanned += r.gc.cards_scanned;
            agg.gc.card_scan_bytes += r.gc.card_scan_bytes;
            agg.gc.stuck_card_rescans += r.gc.stuck_card_rescans;
            agg.gc.rdds_migrated += r.gc.rdds_migrated;
            agg.gc.write_migrations += r.gc.write_migrations;
            agg.heap.young_allocs += r.heap.young_allocs;
            agg.heap.pretenured_allocs += r.heap.pretenured_allocs;
            agg.heap.allocated_bytes += r.heap.allocated_bytes;
            agg.heap.ref_stores += r.heap.ref_stores;
            agg.heap.cards_dirtied += r.heap.cards_dirtied;
            agg.heap.moves += r.heap.moves;
            agg.heap.frees += r.heap.frees;
            agg.exec.records_streamed += r.exec.records_streamed;
            agg.exec.shuffles += r.exec.shuffles;
            agg.exec.shuffle_bytes += r.exec.shuffle_bytes;
            agg.exec.materializations += r.exec.materializations;
            agg.exec.actions += r.exec.actions;
            agg.exec.rdd_instances += r.exec.rdd_instances;
            agg.exec.evictions += r.exec.evictions;
            agg.exec.fastpath_bytes += r.exec.fastpath_bytes;
            agg.exec.offheap_allocs += r.exec.offheap_allocs;
            agg.exec.offheap_frees += r.exec.offheap_frees;
            agg.exec.offheap_bytes += r.exec.offheap_bytes;
            agg.exec.offheap_leaks += r.exec.offheap_leaks;
            agg.exec.offheap_dead_reads += r.exec.offheap_dead_reads;
            agg.exec.region_stage_arenas += r.exec.region_stage_arenas;
            agg.exec.region_stage_bytes += r.exec.region_stage_bytes;
            agg.exec.region_allocs += r.exec.region_allocs;
            agg.exec.region_frees += r.exec.region_frees;
            agg.exec.region_bytes += r.exec.region_bytes;
            agg.exec.region_leaks += r.exec.region_leaks;
            agg.exec.region_dead_reads += r.exec.region_dead_reads;
            agg.monitored_calls += r.monitored_calls;
            agg.device_bytes[0] += r.device_bytes[0];
            agg.device_bytes[1] += r.device_bytes[1];
            agg.traffic.merge(&r.traffic);
            agg.mem.merge(&r.mem);
            agg.minor_pauses.merge(&r.minor_pauses);
            agg.major_pauses.merge(&r.major_pauses);
            agg.recovery.executor_crashes += r.recovery.executor_crashes;
            agg.recovery.messages_lost += r.recovery.messages_lost;
            agg.recovery.alloc_faults += r.recovery.alloc_faults;
            agg.recovery.partitions_lost += r.recovery.partitions_lost;
            agg.recovery.partitions_recomputed += r.recovery.partitions_recomputed;
            agg.recovery.partitions_restored += r.recovery.partitions_restored;
            agg.recovery.stages_recomputed += r.recovery.stages_recomputed;
            agg.recovery.checkpoint_writes += r.recovery.checkpoint_writes;
            agg.recovery.checkpoint_bytes += r.recovery.checkpoint_bytes;
            agg.recovery.restore_bytes += r.recovery.restore_bytes;
            agg.recovery.journal_noops += r.recovery.journal_noops;
            agg.recovery.journal_torn += r.recovery.journal_torn;
            agg.recovery.recovery_s += r.recovery.recovery_s;
        }
        agg
    }

    /// Peak NVM read bandwidth observed (GB/s), for Figure 8 commentary.
    pub fn peak_nvm_read_gbps(&self) -> f64 {
        self.traffic.peak_gbps(DeviceKind::Nvm, AccessKind::Read)
    }

    /// Worst single GC pause, in milliseconds — the number that holds up
    /// the whole cluster (Section 5.2's citation of Taurus).
    pub fn max_pause_ms(&self) -> f64 {
        self.minor_pauses.max_ns().max(self.major_pauses.max_ns()) / 1e6
    }

    /// Serialize the report as one JSON object: headline times and
    /// energy, the full counter blocks (`gc`, `heap`, `exec`, `mem`),
    /// and the pause distributions. This is the single serialization
    /// path shared by reports and the bench suite's `BENCH_*.json`.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("mode", Json::Str(self.mode.clone())),
            ("elapsed_s", Json::Num(self.elapsed_s)),
            ("mutator_s", Json::Num(self.mutator_s)),
            ("minor_gc_s", Json::Num(self.minor_gc_s)),
            ("major_gc_s", Json::Num(self.major_gc_s)),
            ("energy", self.energy.to_json()),
            ("gc", self.gc.to_json()),
            ("heap", self.heap.to_json()),
            ("exec", self.exec.to_json()),
            ("monitored_calls", Json::UInt(self.monitored_calls)),
            ("dram_bytes", Json::UInt(self.device_bytes[0])),
            ("nvm_bytes", Json::UInt(self.device_bytes[1])),
            ("recovery", self.recovery.to_json()),
            ("mem", self.mem.to_json()),
            ("minor_pauses", self.minor_pauses.to_json()),
            ("major_pauses", self.major_pauses.to_json()),
            ("max_pause_ms", Json::Num(self.max_pause_ms())),
        ])
    }

    /// Header line for [`RunReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "workload,mode,elapsed_s,mutator_s,minor_gc_s,major_gc_s,energy_j,\
dram_static_j,nvm_static_j,dram_dynamic_j,nvm_dynamic_j,minor_gcs,major_gcs,\
rdds_migrated,monitored_calls,dram_bytes,nvm_bytes,evictions,max_pause_ms,\
crashes,parts_recomputed,parts_restored,checkpoint_bytes,recovery_s"
    }

    /// One comma-separated row of the report's headline numbers, for
    /// plotting pipelines.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9},{:.9},{},{},{},{},{},{},{},{:.6},\
             {},{},{},{},{:.9}",
            self.workload,
            self.mode,
            self.elapsed_s,
            self.mutator_s,
            self.minor_gc_s,
            self.major_gc_s,
            self.energy_j(),
            self.energy.dram_static_j,
            self.energy.nvm_static_j,
            self.energy.dram_dynamic_j,
            self.energy.nvm_dynamic_j,
            self.gc.minor_count,
            self.gc.major_count,
            self.gc.rdds_migrated,
            self.monitored_calls,
            self.device_bytes[0],
            self.device_bytes[1],
            self.exec.evictions,
            self.max_pause_ms(),
            self.recovery.executor_crashes,
            self.recovery.partitions_recomputed,
            self.recovery.partitions_restored,
            self.recovery.checkpoint_bytes,
            self.recovery.recovery_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(elapsed: f64, energy_j: f64) -> RunReport {
        RunReport {
            mode: "m".into(),
            workload: "w".into(),
            elapsed_s: elapsed,
            mutator_s: elapsed * 0.8,
            minor_gc_s: elapsed * 0.15,
            major_gc_s: elapsed * 0.05,
            energy: EnergyBreakdown {
                dram_static_j: energy_j,
                nvm_static_j: 0.0,
                dram_dynamic_j: 0.0,
                nvm_dynamic_j: 0.0,
            },
            gc: GcStats::default(),
            heap: HeapStats::default(),
            exec: ExecStats::default(),
            monitored_calls: 0,
            device_bytes: [0, 0],
            traffic: TrafficMeter::new(1e6),
            mem: MemoryStats::new(),
            minor_pauses: PauseStats::default(),
            major_pauses: PauseStats::default(),
            recovery: RecoveryStats::default(),
        }
    }

    #[test]
    fn normalization() {
        let base = dummy(10.0, 100.0);
        let other = dummy(12.0, 60.0);
        assert!((other.time_vs(&base) - 1.2).abs() < 1e-12);
        assert!((other.energy_vs(&base) - 0.6).abs() < 1e-12);
        assert!((other.gc_s() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn summary_is_nonempty() {
        assert!(dummy(1.0, 1.0).summary().contains("time"));
    }

    #[test]
    fn to_json_parses_back_and_keeps_headline_numbers() {
        let r = dummy(2.5, 7.0);
        let text = r.to_json().to_pretty();
        let parsed = obs::Json::parse(&text).unwrap();
        assert_eq!(parsed.get("workload").unwrap().as_str(), Some("w"));
        assert_eq!(
            parsed.get("elapsed_s").unwrap().as_f64().unwrap().to_bits(),
            2.5f64.to_bits()
        );
        assert_eq!(
            parsed
                .get("energy")
                .unwrap()
                .get("total_j")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits(),
            7.0f64.to_bits()
        );
        assert!(parsed.get("gc").unwrap().get("minor_count").is_some());
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = RunReport::csv_header().split(',').count();
        let row_cols = dummy(1.0, 1.0).csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert!(dummy(2.0, 3.0).csv_row().starts_with("w,m,2.0"));
    }
}
