//! A fluent front door for one-off simulations.
//!
//! [`SystemConfig`] is the full configuration surface; [`Simulation`] is
//! the convenient way to assemble the common cases:
//!
//! ```
//! use panthera::{MemoryMode, Simulation};
//! use sparklang::{ActionKind, ProgramBuilder, StorageLevel};
//! use sparklet::DataRegistry;
//! use mheap::Payload;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let src = b.source("nums");
//! let xs = b.bind("xs", src.distinct());
//! b.persist(xs, StorageLevel::MemoryOnly);
//! b.loop_n(3, |b| b.action(xs, ActionKind::Count));
//! let (program, fns) = b.finish();
//!
//! let mut data = DataRegistry::new();
//! data.register("nums", (0..512).map(Payload::Long).collect());
//!
//! let (report, results) = Simulation::new(MemoryMode::Panthera)
//!     .heap_gb(16)
//!     .dram_ratio(1.0 / 3.0)
//!     .run(&program, fns, data)
//!     .expect("valid configuration");
//! assert_eq!(results.results.len(), 3);
//! assert!(report.elapsed_s > 0.0);
//! ```

use crate::config::{ConfigError, SystemConfig, SIM_GB};
use crate::mode::MemoryMode;
use crate::report::RunReport;
use crate::simulate::run_single;
use sparklang::{FnTable, Program};
use sparklet::{DataRegistry, EngineConfig, RunOutcome};

/// Builder for a single simulated run.
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SystemConfig,
}

impl Simulation {
    /// Start from the paper's default setup (64 GB heap, 1/3 DRAM) in the
    /// given mode.
    pub fn new(mode: MemoryMode) -> Self {
        Simulation {
            config: SystemConfig::paper_default(mode),
        }
    }

    /// Heap size in simulated gigabytes (the paper uses 64 and 120).
    pub fn heap_gb(mut self, gb: u64) -> Self {
        self.config.heap_bytes = gb * SIM_GB;
        self
    }

    /// DRAM as a fraction of total memory (the paper uses 1/4 and 1/3).
    pub fn dram_ratio(mut self, ratio: f64) -> Self {
        self.config.dram_ratio = ratio;
        self
    }

    /// Young-generation fraction (the paper settles on 1/6).
    pub fn nursery_fraction(mut self, fraction: f64) -> Self {
        self.config.nursery_fraction = fraction;
        self
    }

    /// Toggle the eager-promotion optimization (Section 4.2.2).
    pub fn eager_promotion(mut self, on: bool) -> Self {
        self.config.eager_promotion = on;
        self
    }

    /// Toggle the card-padding optimization (Section 4.2.3).
    pub fn card_padding(mut self, on: bool) -> Self {
        self.config.card_padding = on;
        self
    }

    /// Toggle dynamic monitoring + migration (Section 5.5).
    pub fn dynamic_migration(mut self, on: bool) -> Self {
        self.config.dynamic_migration = on;
        self
    }

    /// Seed for the unmanaged mode's chunk map.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Executors in the simulated cluster (DESIGN.md §8). The default of
    /// 1 runs the classic single JVM; larger values require driving the
    /// run through the `panthera-cluster` crate.
    pub fn executors(mut self, n: u16) -> Self {
        self.config.executors = n;
        self
    }

    /// Install an event-observer handle: its sinks receive the run's
    /// structured event stream (see the [`obs`] crate). Events observe,
    /// never charge, so this changes no simulated quantity.
    pub fn observer(mut self, observer: obs::Observer) -> Self {
        self.config.observer = observer;
        self
    }

    /// The assembled configuration, for inspection or further tweaking.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Validate and return the assembled configuration.
    ///
    /// # Errors
    ///
    /// The first violated configuration constraint.
    pub fn try_build(&self) -> Result<SystemConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config.clone())
    }

    /// Run `program` over `data` and return the measurements and results,
    /// or a [`ConfigError`] if the assembled configuration is invalid
    /// (e.g. a DRAM ratio too small to hold the nursery).
    ///
    /// # Errors
    ///
    /// The first violated configuration constraint.
    pub fn run(
        &self,
        program: &Program,
        fns: FnTable,
        data: DataRegistry,
    ) -> Result<(RunReport, RunOutcome), ConfigError> {
        run_single(program, fns, data, &self.config, EngineConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_config() {
        let s = Simulation::new(MemoryMode::Unmanaged)
            .heap_gb(120)
            .dram_ratio(0.25)
            .nursery_fraction(0.2)
            .eager_promotion(false)
            .card_padding(false)
            .dynamic_migration(false)
            .seed(42);
        let c = s.config();
        assert_eq!(c.mode, MemoryMode::Unmanaged);
        assert_eq!(c.heap_bytes, 120 * SIM_GB);
        assert_eq!(c.dram_ratio, 0.25);
        assert_eq!(c.nursery_fraction, 0.2);
        assert!(!c.eager_promotion && !c.card_padding && !c.dynamic_migration);
        assert_eq!(c.seed, 42);
        c.validate().unwrap();
    }
}
