//! Fault injection at the exchange boundary.
//!
//! [`FaultedExchange`] wraps the real [`Exchange`] and implements the
//! same [`ExchangeClient`] protocol, consulting a [`FaultPlan`] at each
//! rendezvous:
//!
//! - **Crash points** fire at *barrier entry*, before the executor
//!   deposits its clock. Barriers are perfect cuts: every earlier
//!   collective has completed (a gather only returns once all `E`
//!   executors deposited, and a depositor stays blocked until the result
//!   exists), and no later collective has been entered — so a crashed
//!   executor never leaves a half-deposited slot behind, and replaying
//!   the program from the top re-reads exactly the completed prefix.
//! - **Loss points** fire on gathers: the contribution is conceptually
//!   lost once and retransmitted, so the executor's clock is advanced by
//!   the retransmit penalty *before* the (value-identical) deposit. Loss
//!   costs virtual time, never correctness.
//!
//! All bookkeeping is keyed to simulation structure — per-executor,
//! per-kind gather ordinals that span restarts — so the same plan fires
//! the same faults at the same virtual instants under any host-thread
//! budget.

use super::exchange::Exchange;
use panthera_recovery::{FaultPlan, GatherKind};
use sparklet::{ActionContrib, ClusterError, ExchangeClient, RecoverySlot, ShuffleContrib};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An [`ExchangeClient`] that injects the faults of a [`FaultPlan`]
/// while delegating the real collective work to the wrapped
/// [`Exchange`].
pub struct FaultedExchange {
    inner: Arc<Exchange>,
    /// Crash points not yet fired. A fired point is consumed so the
    /// restarted executor does not crash again when it replays the same
    /// barrier.
    crashes: Mutex<Vec<(u16, u64)>>,
    /// Loss points, consumed on fire for the same reason.
    losses: Mutex<Vec<(u16, GatherKind, u64)>>,
    /// Per-(executor, kind) gather call counters, spanning restarts.
    ordinals: Mutex<HashMap<(u16, GatherKind), u64>>,
    retransmit_ns: f64,
    /// Per-executor recovery counters, for attributing losses and crash
    /// marks to the executor that experienced them.
    slots: Vec<Arc<RecoverySlot>>,
}

impl std::fmt::Debug for FaultedExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultedExchange")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl FaultedExchange {
    /// Wrap `inner`, injecting the faults of `plan`. `slots[e]` is
    /// executor `e`'s recovery counter block.
    pub fn new(inner: Arc<Exchange>, plan: &FaultPlan, slots: Vec<Arc<RecoverySlot>>) -> Self {
        FaultedExchange {
            inner,
            crashes: Mutex::new(plan.crashes.iter().map(|c| (c.exec, c.barrier)).collect()),
            losses: Mutex::new(
                plan.losses
                    .iter()
                    .map(|l| (l.exec, l.kind, l.ordinal))
                    .collect(),
            ),
            ordinals: Mutex::new(HashMap::new()),
            retransmit_ns: plan.retransmit_penalty_ns,
            slots,
        }
    }

    /// The wrapped exchange (for poisoning and permit management).
    pub fn exchange(&self) -> &Arc<Exchange> {
        &self.inner
    }

    /// Advance `exec`'s gather ordinal for `kind` and, if a loss point
    /// matches it, return the retransmit penalty to add to the clock.
    fn loss_penalty(&self, exec: u16, kind: GatherKind) -> f64 {
        let ordinal = {
            let mut ords = self.ordinals.lock().expect("fault ordinal lock");
            let c = ords.entry((exec, kind)).or_insert(0);
            let o = *c;
            *c += 1;
            o
        };
        let mut losses = self.losses.lock().expect("fault loss lock");
        let hit = losses
            .iter()
            .position(|&(e, k, o)| e == exec && k == kind && o == ordinal);
        match hit {
            Some(i) => {
                losses.swap_remove(i);
                self.slots[usize::from(exec)].with(|c| c.messages_lost += 1);
                self.retransmit_ns
            }
            None => 0.0,
        }
    }
}

impl ExchangeClient for FaultedExchange {
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ShuffleContrib>>, f64), ClusterError> {
        let penalty = self.loss_penalty(exec, GatherKind::Shuffle);
        self.inner
            .gather_shuffle(exec, rdd, contrib, clock_ns + penalty)
    }

    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ActionContrib>>, f64), ClusterError> {
        let penalty = self.loss_penalty(exec, GatherKind::Action);
        self.inner
            .gather_action(exec, seq, contrib, clock_ns + penalty)
    }

    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> Result<f64, ClusterError> {
        let fire = {
            let mut crashes = self.crashes.lock().expect("fault crash lock");
            let hit = crashes.iter().position(|&(e, b)| e == exec && b == index);
            match hit {
                Some(i) => {
                    crashes.swap_remove(i);
                    true
                }
                None => false,
            }
        };
        if fire {
            // Unwind before depositing: the barrier slot stays clean and
            // the survivors keep waiting for the restarted incarnation.
            return Err(ClusterError::InjectedCrash {
                exec,
                barrier: index,
                at_ns: clock_ns,
            });
        }
        self.inner.barrier(exec, index, clock_ns)
    }
}
