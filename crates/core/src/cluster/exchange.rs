//! The in-process shuffle exchange: a deterministic rendezvous hub.
//!
//! Executors run on host OS threads but interact only through *gathers* —
//! all-to-all collective operations keyed by a value every executor
//! derives from the (shared, deterministic) program structure: the
//! shuffled RDD's id, the action sequence number, or the statement
//! barrier index. Each gather blocks until all `E` executors have
//! deposited their contribution, then hands every participant the same
//! `Arc`-shared result vector in executor-id order together with the
//! barrier time `t_bar = max` over the participants' virtual clocks.
//! Because the result depends only on *what* was deposited (never on
//! deposit order), the exchange is a Kahn network: host scheduling cannot
//! change any simulated value.
//!
//! The exchange also rations *host* parallelism. Each executor thread
//! holds a run permit while it computes; a thread that blocks in a gather
//! returns its permit to the pool so that, even with a single permit,
//! the remaining executors can run and complete the collective. This
//! makes `host_threads = 1` a true serialization of the same computation
//! — used by the determinism checks — without changing any value.
//!
//! # Poisoning
//!
//! A gather can only complete if every executor eventually arrives. When
//! one of them dies instead — a panic in an executor thread, or an
//! injected crash the driver chooses not to recover — every peer blocked
//! in a `Condvar` wait would deadlock forever. [`Exchange::poison`]
//! prevents that: it records the failure and wakes every waiter; every
//! blocked or future rendezvous call then returns the same typed
//! [`ClusterError`] instead of a result.
//!
//! Permits are accounted *per executor* ([`Exchange::acquire_permit`] /
//! [`Exchange::release_permit`] take the executor id, and the exchange
//! tracks who holds one): releasing is a no-op unless that executor
//! actually holds a permit, so a thread that unwinds out of a gather
//! wait — where it had already handed its permit back — cannot over-grant
//! the pool when the driver releases on its behalf. This replaces PR 5's
//! "flood the pool on poison" workaround, and keeps the accounting exact
//! across arbitrarily many crash→restart cycles.
//!
//! # Replay
//!
//! All three collectives are idempotent: completed results — including
//! statement barriers — are cached for the lifetime of the run, so a
//! restarted executor replaying the program from the top re-reads every
//! rendezvous it had already completed without blocking and without
//! re-depositing, then deposits live once it passes the crash point.
//! Deposits are *digest-validated*: the exchange records each live
//! contribution's structural digest, and a repeated deposit (a replayed
//! executor re-issuing an operation whose first issue already landed) is
//! accepted as a no-op when the digests match — and panics when they
//! don't, because a divergent replay means determinism is broken.

use sparklet::{ActionContrib, ClusterError, ExchangeClient, ShuffleContrib, ShuffleTransport};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// One collective gather in flight (or completed and cached).
struct Slot<T> {
    /// Per-executor deposits: `(contribution, clock at deposit)`.
    contribs: Vec<Option<(T, f64)>>,
    /// Structural digest of each executor's live deposit, kept past
    /// finalization (contributions are drained into the result) so a
    /// replayed deposit can be validated against what actually landed.
    digests: Vec<Option<u64>>,
    /// Finalized result, kept for idempotent re-requests (an executor
    /// that evicted and recomputed a shuffled RDD gathers it again, and a
    /// restarted executor replays every completed gather).
    result: Option<(Arc<Vec<T>>, f64)>,
}

impl<T> Slot<T> {
    fn new(n: usize) -> Self {
        Slot {
            contribs: (0..n).map(|_| None).collect(),
            digests: vec![None; n],
            result: None,
        }
    }
}

/// One statement barrier, in flight or completed. Completed barrier times
/// are cached for the whole run (a `u64` and an `f64` per statement) so a
/// restarted executor can replay through them.
struct BarrierSlot {
    clocks: Vec<Option<f64>>,
    result: Option<f64>,
}

struct ExState {
    /// Host-thread run permits currently available.
    permits_free: usize,
    /// Which executors currently hold a run permit. Exact bookkeeping —
    /// a release for an executor that holds nothing is a no-op — so
    /// crash→restart cycles and unwinds out of gather waits can never
    /// over-grant the pool or strand a waiter.
    holders: Vec<bool>,
    /// First failure, if the exchange has been poisoned.
    poisoned: Option<ClusterError>,
    /// Shuffle gathers keyed by the shuffled RDD's id.
    shuffles: HashMap<u32, Slot<ShuffleContrib>>,
    /// Action gathers keyed by the action sequence number.
    actions: HashMap<u64, Slot<ActionContrib>>,
    /// Statement barriers keyed by the barrier index.
    barriers: HashMap<u64, BarrierSlot>,
    /// Total modelled bytes deposited into the shared shuffle region
    /// (0 under the serde transport). Deposits are intern-table-backed
    /// `WirePayload`s, so peers read them in place — this counter is the
    /// whole "transfer": no serialization, no per-record wire copies.
    shared_region_bytes: u64,
}

/// The shared exchange for one cluster run: `E` executors, a bounded pool
/// of host-thread run permits, and the collective state behind one lock.
pub struct Exchange {
    n_exec: usize,
    /// How map-side shuffle output reaches reducers: per-record serde over
    /// the simulated network, or in-place deposits into a shared memory
    /// region charged at memory bandwidth (DESIGN.md §10).
    transport: ShuffleTransport,
    state: Mutex<ExState>,
    cv: Condvar,
}

impl std::fmt::Debug for Exchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exchange")
            .field("n_exec", &self.n_exec)
            .finish_non_exhaustive()
    }
}

impl Exchange {
    /// An exchange for `n_exec` executors with `host_threads` run
    /// permits. `host_threads` is clamped to `1..=n_exec`; it bounds how
    /// many executors *compute* concurrently and has no effect on any
    /// simulated value.
    pub fn new(n_exec: u16, host_threads: usize) -> Arc<Exchange> {
        Exchange::with_transport(n_exec, host_threads, ShuffleTransport::Serde)
    }

    /// [`Exchange::new`] with an explicit shuffle transport. Under
    /// [`ShuffleTransport::SharedRegion`] the exchange additionally
    /// accounts every map-side deposit's modelled bytes as shared-region
    /// residency ([`Exchange::shared_region_bytes`]); the rendezvous
    /// protocol and every gathered value are identical under both
    /// transports — only the engine-side cost charge differs.
    pub fn with_transport(
        n_exec: u16,
        host_threads: usize,
        transport: ShuffleTransport,
    ) -> Arc<Exchange> {
        let n = usize::from(n_exec.max(1));
        Arc::new(Exchange {
            n_exec: n,
            transport,
            state: Mutex::new(ExState {
                permits_free: host_threads.clamp(1, n),
                holders: vec![false; n],
                poisoned: None,
                shuffles: HashMap::new(),
                actions: HashMap::new(),
                barriers: HashMap::new(),
                shared_region_bytes: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Total modelled bytes deposited into the shared shuffle region over
    /// the run. Always 0 under [`ShuffleTransport::Serde`]. Deposits are
    /// counted once per live gather contribution (idempotent re-reads and
    /// replay re-traversals deposit nothing, so they add nothing).
    pub fn shared_region_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("exchange lock poisoned")
            .shared_region_bytes
    }

    /// Poison the exchange: record `err` as the run's failure (first
    /// poisoner wins) and wake everyone. Every executor blocked in — or
    /// later entering — a collective observes the recorded error instead
    /// of deadlocking; poisoned wait loops exit *before* their permit
    /// check, so the pool needs no flooding and stays exactly accounted.
    pub fn poison(&self, err: ClusterError) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if st.poisoned.is_none() {
            st.poisoned = Some(err);
        }
        self.cv.notify_all();
    }

    /// The failure the exchange was poisoned with, if any.
    pub fn poison_cause(&self) -> Option<ClusterError> {
        self.state
            .lock()
            .expect("exchange lock poisoned")
            .poisoned
            .clone()
    }

    /// Block until a run permit is free and take it for executor `exec`.
    /// Called by each executor incarnation before it starts computing.
    /// Fails instead of blocking if the exchange is poisoned.
    ///
    /// # Panics
    ///
    /// Panics if `exec` already holds a permit — an incarnation acquired
    /// twice, which would deadlock a single-permit pool.
    pub fn acquire_permit(&self, exec: u16) -> Result<(), ClusterError> {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        assert!(
            !st.holders[usize::from(exec)],
            "executor {exec} acquired a run permit it already holds"
        );
        loop {
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            if st.permits_free > 0 {
                st.permits_free -= 1;
                st.holders[usize::from(exec)] = true;
                return Ok(());
            }
            st = self.cv.wait(st).expect("exchange lock poisoned");
        }
    }

    /// Return executor `exec`'s run permit to the pool, if it holds one.
    /// Called by the driver after each incarnation completes (normally or
    /// by unwinding). A no-op when the executor holds nothing — it died
    /// inside a gather wait, where the permit had already been handed
    /// back — so repeated crash→restart cycles keep the pool exact.
    pub fn release_permit(&self, exec: u16) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if std::mem::replace(&mut st.holders[usize::from(exec)], false) {
            st.permits_free += 1;
        }
        self.cv.notify_all();
    }

    /// Run permits currently available (test/diagnostic hook — the pool
    /// must return to its configured size once every executor is done).
    pub fn permits_free(&self) -> usize {
        self.state
            .lock()
            .expect("exchange lock poisoned")
            .permits_free
    }

    /// The shared gather protocol for shuffles and actions.
    ///
    /// The caller holds a run permit. If the slot already has a result
    /// (an idempotent re-request), validate the caller's digest against
    /// what it originally deposited (if it deposited at all) and serve
    /// the cached result. Otherwise deposit; the last depositor finalizes
    /// (contributions in executor-id order, `t_bar = max` clock) and
    /// returns still holding its permit. A non-final depositor returns
    /// its permit to the pool, waits for the result, then re-acquires a
    /// permit before resuming.
    ///
    /// A repeated deposit into a *live* slot (the caller's contribution
    /// is present but the gather has not completed) is a no-op when the
    /// digests match: the original deposit — and its clock — stands, and
    /// the caller proceeds to the wait. A digest mismatch in either case
    /// panics: replay re-issued a different payload than the original
    /// timeline produced, so determinism is broken.
    ///
    /// `deposit_bytes` is the contribution's modelled shared-region
    /// footprint; it is added to the region counter only when a live
    /// deposit actually happens (never on cached re-reads or validated
    /// duplicates), under the same lock acquisition as the deposit.
    #[allow(clippy::too_many_arguments)]
    fn gather<K, T>(
        &self,
        select: impl Fn(&mut ExState) -> &mut HashMap<K, Slot<T>>,
        key: K,
        exec: u16,
        contrib: T,
        digest: u64,
        clock_ns: f64,
        deposit_bytes: u64,
    ) -> Result<(Arc<Vec<T>>, f64), ClusterError>
    where
        K: Eq + Hash + Copy,
    {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if let Some(err) = &st.poisoned {
            return Err(err.clone());
        }
        let n = self.n_exec;
        let e = usize::from(exec);
        let slot = select(&mut st).entry(key).or_insert_with(|| Slot::new(n));
        let validate = |recorded: u64| {
            assert_eq!(
                recorded, digest,
                "executor {exec} re-deposited a divergent payload into a gather \
                 (digest {recorded:#x} landed, replay produced {digest:#x})"
            );
        };
        if let Some((res, t_bar)) = &slot.result {
            if let Some(recorded) = slot.digests[e] {
                validate(recorded);
            }
            return Ok((Arc::clone(res), *t_bar));
        }
        let deposited = if let Some(recorded) = slot.digests[e] {
            // Live duplicate: the first deposit (and its clock) stands.
            validate(recorded);
            false
        } else {
            slot.contribs[e] = Some((contrib, clock_ns));
            slot.digests[e] = Some(digest);
            true
        };
        let finalized = if slot.contribs.iter().all(Option::is_some) {
            let mut items = Vec::with_capacity(n);
            let mut t_bar = f64::NEG_INFINITY;
            for c in slot.contribs.drain(..) {
                let (item, t) = c.expect("checked all deposits present");
                t_bar = t_bar.max(t);
                items.push(item);
            }
            let res = Arc::new(items);
            slot.result = Some((Arc::clone(&res), t_bar));
            Some((res, t_bar))
        } else {
            None
        };
        if deposited {
            st.shared_region_bytes += deposit_bytes;
        }
        if let Some((res, t_bar)) = finalized {
            self.cv.notify_all();
            return Ok((res, t_bar));
        }
        // Not complete yet: hand the permit back so peers can run even
        // under a single-permit host budget, and wait for the result.
        st.permits_free += 1;
        st.holders[e] = false;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            let ready = select(&mut st)
                .get(&key)
                .and_then(|s| s.result.as_ref().map(|(r, t)| (Arc::clone(r), *t)));
            if let Some(res) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    st.holders[e] = true;
                    return Ok(res);
                }
            }
        }
    }
}

impl ExchangeClient for Exchange {
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ShuffleContrib>>, f64), ClusterError> {
        let deposit_bytes = match self.transport {
            ShuffleTransport::Serde => 0,
            ShuffleTransport::SharedRegion => contrib.model_bytes(),
        };
        let digest = contrib.digest();
        self.gather(
            |st| &mut st.shuffles,
            rdd,
            exec,
            contrib,
            digest,
            clock_ns,
            deposit_bytes,
        )
    }

    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ActionContrib>>, f64), ClusterError> {
        let digest = contrib.digest();
        self.gather(
            |st| &mut st.actions,
            seq,
            exec,
            contrib,
            digest,
            clock_ns,
            0,
        )
    }

    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> Result<f64, ClusterError> {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if let Some(err) = &st.poisoned {
            return Err(err.clone());
        }
        let n = self.n_exec;
        let slot = st.barriers.entry(index).or_insert_with(|| BarrierSlot {
            clocks: vec![None; n],
            result: None,
        });
        if let Some(t_bar) = slot.result {
            // A replaying executor re-traversing a completed barrier.
            return Ok(t_bar);
        }
        assert!(
            slot.clocks[usize::from(exec)].is_none(),
            "executor {exec} re-entered live barrier {index}"
        );
        slot.clocks[usize::from(exec)] = Some(clock_ns);
        if slot.clocks.iter().all(Option::is_some) {
            let t_bar = slot
                .clocks
                .iter()
                .map(|c| c.expect("checked all clocks present"))
                .fold(f64::NEG_INFINITY, f64::max);
            slot.result = Some(t_bar);
            self.cv.notify_all();
            return Ok(t_bar);
        }
        st.permits_free += 1;
        st.holders[usize::from(exec)] = false;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            let ready = st.barriers.get(&index).and_then(|s| s.result);
            if let Some(t_bar) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    st.holders[usize::from(exec)] = true;
                    return Ok(t_bar);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR 5 bugfix, distilled: a peer that dies instead of arriving
    /// must not strand waiters in the condvar forever. Poisoning wakes
    /// the blocked executor with a typed error.
    #[test]
    fn poison_wakes_blocked_barrier_waiter() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        ex.acquire_permit(0).unwrap();
        let waiter = std::thread::spawn(move || ex2.barrier(0, 0, 1.0));
        // Give the waiter time to deposit and block, then poison instead
        // of arriving as executor 1.
        while ex.state.lock().unwrap().barriers.is_empty() {
            std::thread::yield_now();
        }
        ex.poison(ClusterError::Poisoned {
            exec: 1,
            reason: "synthetic failure".into(),
        });
        let got = waiter.join().expect("waiter must not deadlock or panic");
        assert_eq!(
            got,
            Err(ClusterError::Poisoned {
                exec: 1,
                reason: "synthetic failure".into(),
            })
        );
    }

    /// Every rendezvous entered after poisoning fails fast, too.
    #[test]
    fn poisoned_exchange_rejects_new_collectives() {
        let ex = Exchange::new(2, 2);
        ex.poison(ClusterError::Poisoned {
            exec: 0,
            reason: "gone".into(),
        });
        assert!(ex.barrier(1, 7, 0.0).is_err());
        assert!(ex
            .gather_action(1, 0, ActionContrib::Count(1), 0.0)
            .is_err());
        assert!(ex.acquire_permit(1).is_err());
        assert!(ex.poison_cause().is_some());
    }

    /// Completed barriers are cached: a replaying executor re-traverses
    /// them without blocking and without double-deposit panics.
    #[test]
    fn completed_barriers_serve_replays_from_cache() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        let peer = std::thread::spawn(move || ex2.barrier(1, 0, 5.0).unwrap());
        ex.acquire_permit(0).unwrap();
        let t0 = ex.barrier(0, 0, 3.0).unwrap();
        assert_eq!(peer.join().unwrap(), 5.0);
        assert_eq!(t0, 5.0);
        // Replay: same executor, same barrier — served, not deposited.
        assert_eq!(ex.barrier(0, 0, 99.0).unwrap(), 5.0);
    }

    /// The permit pool stays exact across crash→restart cycles: a release
    /// for an executor that holds nothing (it died inside a gather wait,
    /// or the driver releases defensively after an unwind) is a no-op, so
    /// the pool can never grow past its configured size.
    #[test]
    fn release_without_hold_cannot_over_grant_permits() {
        let ex = Exchange::new(3, 2);
        assert_eq!(ex.permits_free(), 2);
        ex.acquire_permit(0).unwrap();
        assert_eq!(ex.permits_free(), 1);
        // Many defensive releases for executors that hold nothing.
        for _ in 0..5 {
            ex.release_permit(1);
            ex.release_permit(2);
        }
        assert_eq!(ex.permits_free(), 1, "no-op releases must not mint permits");
        // Double release by the holder is also counted once.
        ex.release_permit(0);
        ex.release_permit(0);
        assert_eq!(ex.permits_free(), 2);
        // Repeated crash→restart cycles: acquire/release per incarnation.
        for _ in 0..10 {
            ex.acquire_permit(1).unwrap();
            ex.release_permit(1);
        }
        assert_eq!(ex.permits_free(), 2, "pool returns to its configured size");
    }

    /// Poisoning no longer floods the permit pool: waiters are woken by
    /// the poison error itself, and the pool stays exactly accounted so a
    /// later inspection sees the true state.
    #[test]
    fn poison_preserves_permit_accounting() {
        let ex = Exchange::new(2, 2);
        ex.acquire_permit(0).unwrap();
        ex.poison(ClusterError::Poisoned {
            exec: 1,
            reason: "gone".into(),
        });
        assert_eq!(ex.permits_free(), 1, "poison must not mint permits");
        ex.release_permit(0);
        assert_eq!(ex.permits_free(), 2);
    }

    /// A replayed deposit with an identical payload is a validated no-op:
    /// the original deposit's clock stands (the barrier time does not
    /// move), and the duplicate adds no shared-region bytes.
    #[test]
    fn duplicate_deposit_with_equal_digest_is_noop() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        let peer =
            std::thread::spawn(move || ex2.gather_action(1, 0, ActionContrib::Count(10), 7.0));
        ex.acquire_permit(0).unwrap();
        let (res, t_bar) = ex
            .gather_action(0, 0, ActionContrib::Count(5), 3.0)
            .unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(t_bar, 7.0);
        peer.join().unwrap().unwrap();
        // Replay the same deposit with a *different* clock: served from
        // cache, digest-validated, clock ignored.
        let (res2, t2) = ex
            .gather_action(0, 0, ActionContrib::Count(5), 99.0)
            .unwrap();
        assert_eq!(t2, 7.0, "the original deposit's clock stands");
        assert_eq!(res2.len(), 2);
    }

    /// A replayed deposit whose payload diverges from what landed is a
    /// determinism violation and must panic, not silently proceed.
    #[test]
    fn duplicate_deposit_with_divergent_digest_panics() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        let peer =
            std::thread::spawn(move || ex2.gather_action(1, 0, ActionContrib::Count(10), 7.0));
        ex.acquire_permit(0).unwrap();
        ex.gather_action(0, 0, ActionContrib::Count(5), 3.0)
            .unwrap();
        peer.join().unwrap().unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ex.gather_action(0, 0, ActionContrib::Count(6), 3.0)
        }))
        .expect_err("divergent replay must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("divergent payload"), "{msg}");
    }
}
