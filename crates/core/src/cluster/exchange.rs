//! The in-process shuffle exchange: a deterministic rendezvous hub.
//!
//! Executors run on host OS threads but interact only through *gathers* —
//! all-to-all collective operations keyed by a value every executor
//! derives from the (shared, deterministic) program structure: the
//! shuffled RDD's id, the action sequence number, or the statement
//! barrier index. Each gather blocks until all `E` executors have
//! deposited their contribution, then hands every participant the same
//! `Arc`-shared result vector in executor-id order together with the
//! barrier time `t_bar = max` over the participants' virtual clocks.
//! Because the result depends only on *what* was deposited (never on
//! deposit order), the exchange is a Kahn network: host scheduling cannot
//! change any simulated value.
//!
//! The exchange also rations *host* parallelism. Each executor thread
//! holds a run permit while it computes; a thread that blocks in a gather
//! returns its permit to the pool so that, even with a single permit,
//! the remaining executors can run and complete the collective. This
//! makes `host_threads = 1` a true serialization of the same computation
//! — used by the determinism checks — without changing any value.
//!
//! # Poisoning
//!
//! A gather can only complete if every executor eventually arrives. When
//! one of them dies instead — a panic in an executor thread, or an
//! injected crash the driver chooses not to recover — every peer blocked
//! in a `Condvar` wait would deadlock forever. [`Exchange::poison`]
//! prevents that: it records the failure, floods the permit pool (permit
//! accounting is meaningless once the run is lost), and wakes every
//! waiter; every blocked or future rendezvous call then returns the same
//! typed [`ClusterError`] instead of a result.
//!
//! # Replay
//!
//! All three collectives are idempotent: completed results — including
//! statement barriers — are cached for the lifetime of the run, so a
//! restarted executor replaying the program from the top re-reads every
//! rendezvous it had already completed without blocking and without
//! re-depositing, then deposits live once it passes the crash point.

use sparklet::{ActionContrib, ClusterError, ExchangeClient, ShuffleContrib, ShuffleTransport};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

/// One collective gather in flight (or completed and cached).
struct Slot<T> {
    /// Per-executor deposits: `(contribution, clock at deposit)`.
    contribs: Vec<Option<(T, f64)>>,
    /// Finalized result, kept for idempotent re-requests (an executor
    /// that evicted and recomputed a shuffled RDD gathers it again, and a
    /// restarted executor replays every completed gather).
    result: Option<(Arc<Vec<T>>, f64)>,
}

impl<T> Slot<T> {
    fn new(n: usize) -> Self {
        Slot {
            contribs: (0..n).map(|_| None).collect(),
            result: None,
        }
    }
}

/// One statement barrier, in flight or completed. Completed barrier times
/// are cached for the whole run (a `u64` and an `f64` per statement) so a
/// restarted executor can replay through them.
struct BarrierSlot {
    clocks: Vec<Option<f64>>,
    result: Option<f64>,
}

struct ExState {
    /// Host-thread run permits currently available.
    permits_free: usize,
    /// First failure, if the exchange has been poisoned.
    poisoned: Option<ClusterError>,
    /// Shuffle gathers keyed by the shuffled RDD's id.
    shuffles: HashMap<u32, Slot<ShuffleContrib>>,
    /// Action gathers keyed by the action sequence number.
    actions: HashMap<u64, Slot<ActionContrib>>,
    /// Statement barriers keyed by the barrier index.
    barriers: HashMap<u64, BarrierSlot>,
    /// Total modelled bytes deposited into the shared shuffle region
    /// (0 under the serde transport). Deposits are intern-table-backed
    /// `WirePayload`s, so peers read them in place — this counter is the
    /// whole "transfer": no serialization, no per-record wire copies.
    shared_region_bytes: u64,
}

/// The shared exchange for one cluster run: `E` executors, a bounded pool
/// of host-thread run permits, and the collective state behind one lock.
pub struct Exchange {
    n_exec: usize,
    /// How map-side shuffle output reaches reducers: per-record serde over
    /// the simulated network, or in-place deposits into a shared memory
    /// region charged at memory bandwidth (DESIGN.md §10).
    transport: ShuffleTransport,
    state: Mutex<ExState>,
    cv: Condvar,
}

impl std::fmt::Debug for Exchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Exchange")
            .field("n_exec", &self.n_exec)
            .finish_non_exhaustive()
    }
}

impl Exchange {
    /// An exchange for `n_exec` executors with `host_threads` run
    /// permits. `host_threads` is clamped to `1..=n_exec`; it bounds how
    /// many executors *compute* concurrently and has no effect on any
    /// simulated value.
    pub fn new(n_exec: u16, host_threads: usize) -> Arc<Exchange> {
        Exchange::with_transport(n_exec, host_threads, ShuffleTransport::Serde)
    }

    /// [`Exchange::new`] with an explicit shuffle transport. Under
    /// [`ShuffleTransport::SharedRegion`] the exchange additionally
    /// accounts every map-side deposit's modelled bytes as shared-region
    /// residency ([`Exchange::shared_region_bytes`]); the rendezvous
    /// protocol and every gathered value are identical under both
    /// transports — only the engine-side cost charge differs.
    pub fn with_transport(
        n_exec: u16,
        host_threads: usize,
        transport: ShuffleTransport,
    ) -> Arc<Exchange> {
        let n = usize::from(n_exec.max(1));
        Arc::new(Exchange {
            n_exec: n,
            transport,
            state: Mutex::new(ExState {
                permits_free: host_threads.clamp(1, n),
                poisoned: None,
                shuffles: HashMap::new(),
                actions: HashMap::new(),
                barriers: HashMap::new(),
                shared_region_bytes: 0,
            }),
            cv: Condvar::new(),
        })
    }

    /// Total modelled bytes deposited into the shared shuffle region over
    /// the run. Always 0 under [`ShuffleTransport::Serde`]. Deposits are
    /// counted once per live gather contribution (idempotent re-reads and
    /// replay re-traversals deposit nothing, so they add nothing).
    pub fn shared_region_bytes(&self) -> u64 {
        self.state
            .lock()
            .expect("exchange lock poisoned")
            .shared_region_bytes
    }

    /// Poison the exchange: record `err` as the run's failure (first
    /// poisoner wins), flood the permit pool so no waiter can starve, and
    /// wake everyone. Every executor blocked in — or later entering — a
    /// collective observes the recorded error instead of deadlocking.
    pub fn poison(&self, err: ClusterError) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if st.poisoned.is_none() {
            st.poisoned = Some(err);
        }
        // Permit accounting is moot once the run is lost; flooding the
        // pool guarantees every wait loop's exit condition can fire.
        st.permits_free = self.n_exec;
        self.cv.notify_all();
    }

    /// The failure the exchange was poisoned with, if any.
    pub fn poison_cause(&self) -> Option<ClusterError> {
        self.state
            .lock()
            .expect("exchange lock poisoned")
            .poisoned
            .clone()
    }

    /// Block until a run permit is free and take it. Called by each
    /// executor thread before it starts computing. Fails instead of
    /// blocking if the exchange is poisoned.
    pub fn acquire_permit(&self) -> Result<(), ClusterError> {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        loop {
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            if st.permits_free > 0 {
                st.permits_free -= 1;
                return Ok(());
            }
            st = self.cv.wait(st).expect("exchange lock poisoned");
        }
    }

    /// Return a run permit to the pool. Called by each executor thread
    /// after its run completes (normally or by unwinding).
    pub fn release_permit(&self) {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        // After poisoning the pool is pinned full; don't grow it further.
        if st.poisoned.is_none() {
            st.permits_free += 1;
        }
        self.cv.notify_all();
    }

    /// The shared gather protocol for shuffles and actions.
    ///
    /// The caller holds a run permit. If the slot already has a result
    /// (an idempotent re-request), serve it without depositing. Otherwise
    /// deposit; the last depositor finalizes (contributions in
    /// executor-id order, `t_bar = max` clock) and returns still holding
    /// its permit. A non-final depositor returns its permit to the pool,
    /// waits for the result, then re-acquires a permit before resuming.
    ///
    /// `deposit_bytes` is the contribution's modelled shared-region
    /// footprint; it is added to the region counter only when a live
    /// deposit actually happens (never on cached re-reads), under the
    /// same lock acquisition as the deposit itself.
    fn gather<K, T>(
        &self,
        select: impl Fn(&mut ExState) -> &mut HashMap<K, Slot<T>>,
        key: K,
        exec: u16,
        contrib: T,
        clock_ns: f64,
        deposit_bytes: u64,
    ) -> Result<(Arc<Vec<T>>, f64), ClusterError>
    where
        K: Eq + Hash + Copy,
    {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if let Some(err) = &st.poisoned {
            return Err(err.clone());
        }
        let n = self.n_exec;
        let slot = select(&mut st).entry(key).or_insert_with(|| Slot::new(n));
        if let Some((res, t_bar)) = &slot.result {
            return Ok((Arc::clone(res), *t_bar));
        }
        assert!(
            slot.contribs[usize::from(exec)].is_none(),
            "executor {exec} deposited twice into one gather"
        );
        slot.contribs[usize::from(exec)] = Some((contrib, clock_ns));
        let finalized = if slot.contribs.iter().all(Option::is_some) {
            let mut items = Vec::with_capacity(n);
            let mut t_bar = f64::NEG_INFINITY;
            for c in slot.contribs.drain(..) {
                let (item, t) = c.expect("checked all deposits present");
                t_bar = t_bar.max(t);
                items.push(item);
            }
            let res = Arc::new(items);
            slot.result = Some((Arc::clone(&res), t_bar));
            Some((res, t_bar))
        } else {
            None
        };
        st.shared_region_bytes += deposit_bytes;
        if let Some((res, t_bar)) = finalized {
            self.cv.notify_all();
            return Ok((res, t_bar));
        }
        // Not complete yet: hand the permit back so peers can run even
        // under a single-permit host budget, and wait for the result.
        st.permits_free += 1;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            let ready = select(&mut st)
                .get(&key)
                .and_then(|s| s.result.as_ref().map(|(r, t)| (Arc::clone(r), *t)));
            if let Some(res) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    return Ok(res);
                }
            }
        }
    }
}

impl ExchangeClient for Exchange {
    fn gather_shuffle(
        &self,
        exec: u16,
        rdd: u32,
        contrib: ShuffleContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ShuffleContrib>>, f64), ClusterError> {
        let deposit_bytes = match self.transport {
            ShuffleTransport::Serde => 0,
            ShuffleTransport::SharedRegion => contrib.model_bytes(),
        };
        self.gather(
            |st| &mut st.shuffles,
            rdd,
            exec,
            contrib,
            clock_ns,
            deposit_bytes,
        )
    }

    fn gather_action(
        &self,
        exec: u16,
        seq: u64,
        contrib: ActionContrib,
        clock_ns: f64,
    ) -> Result<(Arc<Vec<ActionContrib>>, f64), ClusterError> {
        self.gather(|st| &mut st.actions, seq, exec, contrib, clock_ns, 0)
    }

    fn barrier(&self, exec: u16, index: u64, clock_ns: f64) -> Result<f64, ClusterError> {
        let mut st = self.state.lock().expect("exchange lock poisoned");
        if let Some(err) = &st.poisoned {
            return Err(err.clone());
        }
        let n = self.n_exec;
        let slot = st.barriers.entry(index).or_insert_with(|| BarrierSlot {
            clocks: vec![None; n],
            result: None,
        });
        if let Some(t_bar) = slot.result {
            // A replaying executor re-traversing a completed barrier.
            return Ok(t_bar);
        }
        assert!(
            slot.clocks[usize::from(exec)].is_none(),
            "executor {exec} re-entered live barrier {index}"
        );
        slot.clocks[usize::from(exec)] = Some(clock_ns);
        if slot.clocks.iter().all(Option::is_some) {
            let t_bar = slot
                .clocks
                .iter()
                .map(|c| c.expect("checked all clocks present"))
                .fold(f64::NEG_INFINITY, f64::max);
            slot.result = Some(t_bar);
            self.cv.notify_all();
            return Ok(t_bar);
        }
        st.permits_free += 1;
        self.cv.notify_all();
        loop {
            st = self.cv.wait(st).expect("exchange lock poisoned");
            if let Some(err) = &st.poisoned {
                return Err(err.clone());
            }
            let ready = st.barriers.get(&index).and_then(|s| s.result);
            if let Some(t_bar) = ready {
                if st.permits_free > 0 {
                    st.permits_free -= 1;
                    return Ok(t_bar);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR 5 bugfix, distilled: a peer that dies instead of arriving
    /// must not strand waiters in the condvar forever. Poisoning wakes
    /// the blocked executor with a typed error.
    #[test]
    fn poison_wakes_blocked_barrier_waiter() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        ex.acquire_permit().unwrap();
        let waiter = std::thread::spawn(move || ex2.barrier(0, 0, 1.0));
        // Give the waiter time to deposit and block, then poison instead
        // of arriving as executor 1.
        while ex.state.lock().unwrap().barriers.is_empty() {
            std::thread::yield_now();
        }
        ex.poison(ClusterError::Poisoned {
            exec: 1,
            reason: "synthetic failure".into(),
        });
        let got = waiter.join().expect("waiter must not deadlock or panic");
        assert_eq!(
            got,
            Err(ClusterError::Poisoned {
                exec: 1,
                reason: "synthetic failure".into(),
            })
        );
    }

    /// Every rendezvous entered after poisoning fails fast, too.
    #[test]
    fn poisoned_exchange_rejects_new_collectives() {
        let ex = Exchange::new(2, 2);
        ex.poison(ClusterError::Poisoned {
            exec: 0,
            reason: "gone".into(),
        });
        assert!(ex.barrier(1, 7, 0.0).is_err());
        assert!(ex
            .gather_action(1, 0, ActionContrib::Count(1), 0.0)
            .is_err());
        assert!(ex.acquire_permit().is_err());
        assert!(ex.poison_cause().is_some());
    }

    /// Completed barriers are cached: a replaying executor re-traverses
    /// them without blocking and without double-deposit panics.
    #[test]
    fn completed_barriers_serve_replays_from_cache() {
        let ex = Exchange::new(2, 2);
        let ex2 = Arc::clone(&ex);
        let peer = std::thread::spawn(move || ex2.barrier(1, 0, 5.0).unwrap());
        ex.acquire_permit().unwrap();
        let t0 = ex.barrier(0, 0, 3.0).unwrap();
        assert_eq!(peer.join().unwrap(), 5.0);
        assert_eq!(t0, 5.0);
        // Replay: same executor, same barrier — served, not deposited.
        assert_eq!(ex.barrier(0, 0, 99.0).unwrap(), 5.0);
    }
}
