//! A shared pool of executor slots, leased to jobs instead of owned by
//! one run.
//!
//! Every entry point before the job service owned its executors for the
//! whole run. A multi-tenant service instead holds one [`ExecutorPool`]
//! and grants each dispatched job a [`PoolLease`] for the slots it needs,
//! releasing them at the job's next stage barrier. Leases are
//! deterministic — the free list is kept sorted and a lease always takes
//! the lowest-numbered free slots — so the service's scheduling decisions
//! never depend on host-side ordering.

/// A fixed-size pool of executor slots with deterministic lowest-id-first
/// leasing.
#[derive(Debug, Clone)]
pub struct ExecutorPool {
    total: u16,
    /// Free slot ids, ascending.
    free: Vec<u16>,
}

impl ExecutorPool {
    /// A pool of `total` executor slots, all free.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero — a service with no executors can never
    /// dispatch anything.
    pub fn new(total: u16) -> ExecutorPool {
        assert!(total > 0, "executor pool must have at least one slot");
        ExecutorPool {
            total,
            free: (0..total).collect(),
        }
    }

    /// Slots in the pool, free or leased.
    pub fn total(&self) -> u16 {
        self.total
    }

    /// Slots currently free.
    pub fn available(&self) -> u16 {
        self.free.len() as u16
    }

    /// Lease `n` slots, taking the lowest-numbered free ids, or `None`
    /// if fewer than `n` are free (or `n` is zero). The lease must come
    /// back through [`ExecutorPool::release`].
    #[must_use = "an unreleased lease permanently shrinks the pool"]
    pub fn try_lease(&mut self, n: u16) -> Option<PoolLease> {
        if n == 0 || usize::from(n) > self.free.len() {
            return None;
        }
        let slots: Vec<u16> = self.free.drain(..usize::from(n)).collect();
        Some(PoolLease { slots })
    }

    /// Return a lease's slots to the free list.
    ///
    /// # Panics
    ///
    /// Panics if the lease's slots are already free or out of range —
    /// both mean the lease came from a different pool.
    pub fn release(&mut self, lease: PoolLease) {
        for slot in &lease.slots {
            assert!(
                *slot < self.total && !self.free.contains(slot),
                "released slot {slot} is not an outstanding lease of this pool"
            );
        }
        self.free.extend(lease.slots);
        self.free.sort_unstable();
    }
}

/// A deterministic grant of executor slots from an [`ExecutorPool`].
#[derive(Debug)]
pub struct PoolLease {
    slots: Vec<u16>,
}

impl PoolLease {
    /// The leased slot ids, ascending.
    pub fn slots(&self) -> &[u16] {
        &self.slots
    }

    /// Number of slots granted.
    pub fn len(&self) -> u16 {
        self.slots.len() as u16
    }

    /// Whether the lease is empty (never true for a lease a pool issued).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_take_lowest_ids_first() {
        let mut pool = ExecutorPool::new(4);
        let a = pool.try_lease(2).unwrap();
        assert_eq!(a.slots(), &[0, 1]);
        let b = pool.try_lease(1).unwrap();
        assert_eq!(b.slots(), &[2]);
        assert_eq!(pool.available(), 1);
        assert!(pool.try_lease(2).is_none());
        pool.release(a);
        // Released ids come back in order: the next lease reuses 0 and 1.
        let c = pool.try_lease(3).unwrap();
        assert_eq!(c.slots(), &[0, 1, 3]);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.available(), 4);
    }

    #[test]
    #[should_panic(expected = "not an outstanding lease")]
    fn double_release_panics() {
        let mut pool = ExecutorPool::new(2);
        let lease = pool.try_lease(1).unwrap();
        let stray = PoolLease {
            slots: lease.slots().to_vec(),
        };
        pool.release(lease);
        pool.release(stray);
    }
}
