//! The cluster driver: `E` executors, each with its own Panthera heap,
//! scheduled over host OS threads with bit-identical results.
//!
//! The paper evaluates Panthera inside a single Spark executor JVM; this
//! module models the *cluster* around it (DESIGN.md §8). A [`run_cluster`]
//! call plays the Spark driver: it validates the configuration and the
//! program once, then spawns one scoped OS thread per executor. Each
//! executor replays the same driver program over its own
//! [`PantheraRuntime`] — a private heap, GC coordinator,
//! traffic meter, and energy model — computing only the partitions
//! `i % E` of every stage (SPMD with deterministic ownership). Wide
//! dependencies exchange map-side buckets through the
//! [`Exchange`], which charges serialization and transfer on both sides,
//! and virtual clocks synchronize at statement barriers
//! (stage end-time = max over executors, modelling straggler skew).
//!
//! Every cross-thread interaction is a deterministic collective keyed by
//! program structure, so the merged [`RunReport`] is bit-identical
//! regardless of how many host threads actually run (`host_threads` only
//! rations permits) — and an `E = 1` cluster matches the classic
//! single-runtime run record for record.
//!
//! # Fault tolerance
//!
//! [`run_cluster_faulted`] runs the same cluster under a deterministic
//! [`FaultPlan`] (DESIGN.md §9). Injected executor crashes unwind the
//! executor's thread at a statement barrier; the driver restarts it with
//! a fresh [`PantheraRuntime`] whose clock resumes at the
//! crash time plus a restart penalty, and the new incarnation replays
//! the program from the top — re-reading completed collectives from the
//! exchange cache, recomputing lost partitions through lineage (or
//! restoring them from the NVM checkpoint store, under
//! `RecoveryPolicy::CheckpointEvery`). Genuine panics and unrecovered
//! crashes poison the exchange instead, so surviving executors unwind
//! with a typed [`sparklet::ClusterError`] rather than deadlocking.

mod exchange;
mod faults;
mod pool;

pub use exchange::Exchange;
pub use faults::FaultedExchange;
pub use panthera_recovery::{
    AllocFaultPoint, CrashPoint, FaultPlan, FaultSpec, GatherKind, LossPoint, NvmCheckpointStore,
    VCrashPoint,
};
pub use pool::{ExecutorPool, PoolLease};

use crate::error::RunError;
use crate::{
    ConfigError, MemoryMode, PantheraRuntime, RecoveryPolicy, RecoveryStats, RunReport,
    SystemConfig,
};
use hybridmem::DeviceSpec;
use mheap::{Payload, WirePayload};
use obs::{Event, EventSink, Observer};
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::{FnTable, Program};
use sparklet::{
    ActionResult, CheckpointStore, ClusterCtx, ClusterError, DataRegistry, DepositJournal, Engine,
    EngineConfig, ExchangeClient, MemoryRuntime, RecoveryCtx, RecoveryMark, RecoverySlot,
};
use std::cell::{Cell, RefCell};
use std::panic::AssertUnwindSafe;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Everything a cluster run produces.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// The cluster-level aggregate: elapsed time is the barrier-synced
    /// maximum, energy / traffic / GC work are summed across executors
    /// (see [`RunReport::aggregate`]).
    pub report: RunReport,
    /// One sub-report per executor, in executor-id order.
    pub per_executor: Vec<RunReport>,
    /// `(variable name, result)` per executed action, in program order.
    /// Every executor computes the identical global result; this is
    /// executor 0's copy, cross-checked against the rest.
    pub results: Vec<(String, ActionResult)>,
    /// Total modelled bytes deposited into the shared shuffle region
    /// over the run — 0 under [`sparklet::ShuffleTransport::Serde`].
    pub shared_region_bytes: u64,
}

/// A `Send`able mirror of [`ActionResult`] for crossing executor-thread
/// boundaries (payloads come back through [`WirePayload`]).
#[derive(Debug, Clone, PartialEq)]
enum WireResult {
    Count(u64),
    Collected(Vec<WirePayload>),
    Reduced(Option<WirePayload>),
}

fn to_wire(r: &ActionResult) -> WireResult {
    match r {
        ActionResult::Count(n) => WireResult::Count(*n),
        ActionResult::Collected(recs) => {
            WireResult::Collected(recs.iter().map(WirePayload::from).collect())
        }
        ActionResult::Reduced(rec) => WireResult::Reduced(rec.as_ref().map(WirePayload::from)),
    }
}

fn from_wire(r: &WireResult) -> ActionResult {
    match r {
        WireResult::Count(n) => ActionResult::Count(*n),
        WireResult::Collected(recs) => {
            ActionResult::Collected(recs.iter().map(Payload::from).collect())
        }
        WireResult::Reduced(rec) => ActionResult::Reduced(rec.as_ref().map(Payload::from)),
    }
}

/// The `Send`able plain-data core of a [`SystemConfig`], used to rebuild
/// an identical per-executor configuration (fresh observer, one executor)
/// inside each worker thread — `SystemConfig` itself holds an `Rc`-based
/// observer handle and cannot cross threads.
struct CfgSeed {
    mode: MemoryMode,
    heap_bytes: u64,
    dram_ratio: f64,
    nursery_fraction: f64,
    chunk_bytes: u64,
    eager_promotion: bool,
    card_padding: bool,
    dynamic_migration: bool,
    large_array_elems: usize,
    tuple_bloat_bytes: u64,
    nvm_spec: Option<DeviceSpec>,
    seed: u64,
    verify_heap: bool,
    recovery: RecoveryPolicy,
    costs: sparklet::CostModel,
    transport: sparklet::ShuffleTransport,
    offheap_cache: bool,
    region_alloc: bool,
}

impl CfgSeed {
    fn of(c: &SystemConfig) -> CfgSeed {
        CfgSeed {
            mode: c.mode,
            heap_bytes: c.heap_bytes,
            dram_ratio: c.dram_ratio,
            nursery_fraction: c.nursery_fraction,
            chunk_bytes: c.chunk_bytes,
            eager_promotion: c.eager_promotion,
            card_padding: c.card_padding,
            dynamic_migration: c.dynamic_migration,
            large_array_elems: c.large_array_elems,
            tuple_bloat_bytes: c.tuple_bloat_bytes,
            nvm_spec: c.nvm_spec.clone(),
            seed: c.seed,
            verify_heap: c.verify_heap,
            recovery: c.recovery,
            costs: c.costs,
            transport: c.transport,
            offheap_cache: c.offheap_cache,
            region_alloc: c.region_alloc,
        }
    }

    fn rebuild(&self, observer: Observer) -> SystemConfig {
        let mut cfg = SystemConfig::new(self.mode, self.heap_bytes, self.dram_ratio);
        cfg.nursery_fraction = self.nursery_fraction;
        cfg.chunk_bytes = self.chunk_bytes;
        cfg.eager_promotion = self.eager_promotion;
        cfg.card_padding = self.card_padding;
        cfg.dynamic_migration = self.dynamic_migration;
        cfg.large_array_elems = self.large_array_elems;
        cfg.tuple_bloat_bytes = self.tuple_bloat_bytes;
        cfg.nvm_spec = self.nvm_spec.clone();
        cfg.seed = self.seed;
        cfg.verify_heap = self.verify_heap;
        cfg.recovery = self.recovery;
        cfg.costs = self.costs;
        cfg.transport = self.transport;
        cfg.offheap_cache = self.offheap_cache;
        cfg.region_alloc = self.region_alloc;
        cfg.observer = observer;
        cfg.executors = 1; // each executor is one classic single-JVM runtime
        cfg
    }
}

/// Buffers an executor's event stream inside its thread; the driver
/// re-emits the buffered events through the caller's observer afterwards,
/// tagged with the executor id.
struct BufSink {
    events: Vec<(f64, Event)>,
}

impl EventSink for BufSink {
    fn on_event(&mut self, t_ns: f64, event: &Event) {
        self.events.push((t_ns, event.clone()));
    }
}

/// Why an executor thread finished without a result.
enum SlotFailure {
    /// An injected crash fired and the plan disables recovery.
    Crashed { exec: u16, barrier: u64 },
    /// A genuine (unplanned) panic unwound the executor.
    Panicked { exec: u16, reason: String },
    /// The executor was unwound by a peer's failure via the poisoned
    /// exchange; the originating failure is reported by that peer.
    PoisonedPeer,
}

thread_local! {
    /// Marks the current OS thread as cluster-owned (an executor thread
    /// spawned by the driver). The quiet-unwind hook only silences
    /// [`ClusterError`] panics on marked threads; the same payload thrown
    /// anywhere else is somebody else's bug and keeps its full report.
    static CLUSTER_THREAD: Cell<bool> = const { Cell::new(false) };
}

type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;

/// How many cluster runs currently hold a [`QuietUnwindGuard`].
static ACTIVE_RUNS: Mutex<usize> = Mutex::new(0);
/// The panic hook that was installed before ours; the quiet hook
/// delegates genuine panics to it through this slot, and the last guard
/// puts it back via `set_hook` on drop.
static PREV_HOOK: Mutex<Option<PanicHook>> = Mutex::new(None);

/// RAII scope for the process-wide quiet-unwind panic hook.
///
/// Cluster fault handling unwinds executor threads by panicking with a
/// [`ClusterError`] payload (tearing them out of blocked collectives);
/// without intervention every such planned unwind would spray a panic
/// report over the test output. The first live guard installs a hook that
/// silences exactly those panics — payload is a `ClusterError` *and* the
/// panicking thread is a cluster-owned executor thread — and delegates
/// everything else to the previously installed hook, message and
/// backtrace intact. When the last guard drops, the previous hook is
/// restored, so the process's panic behavior outside cluster runs is
/// untouched (PR 5 leaked the hook for the life of the process).
struct QuietUnwindGuard;

impl QuietUnwindGuard {
    fn new() -> QuietUnwindGuard {
        let mut active = ACTIVE_RUNS.lock().expect("hook refcount lock");
        if *active == 0 {
            *PREV_HOOK.lock().expect("prev hook lock") = Some(std::panic::take_hook());
            std::panic::set_hook(Box::new(|info| {
                let expected = CLUSTER_THREAD.with(Cell::get)
                    && info.payload().downcast_ref::<ClusterError>().is_some();
                if !expected {
                    if let Some(prev) = PREV_HOOK.lock().expect("prev hook lock").as_ref() {
                        prev(info);
                    }
                }
            }));
        }
        *active += 1;
        QuietUnwindGuard
    }
}

impl Drop for QuietUnwindGuard {
    fn drop(&mut self) {
        let mut active = ACTIVE_RUNS.lock().expect("hook refcount lock");
        *active -= 1;
        if *active == 0 {
            // Remove our hook first (panics in the gap hit the default
            // hook, which still reports), then put the original back.
            drop(std::panic::take_hook());
            if let Some(prev) = PREV_HOOK.lock().expect("prev hook lock").take() {
                std::panic::set_hook(prev);
            }
        }
    }
}

/// Test diagnostic: `true` when no cluster run holds the quiet-unwind
/// hook and the saved previous hook has been handed back to `set_hook` —
/// i.e. the process's panic behavior is exactly what it was before the
/// first run started.
#[doc(hidden)]
pub fn quiet_unwind_idle() -> bool {
    *ACTIVE_RUNS.lock().expect("hook refcount lock") == 0
        && PREV_HOOK.lock().expect("prev hook lock").is_none()
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run the program on a simulated cluster of `config.executors` executors.
///
/// `build` constructs the program, function table, and input data; it is
/// called once on the driver (for validation and the Section 3 analysis)
/// and once inside each executor thread, and must be deterministic — every
/// call must produce the identical program and data. `host_threads` bounds
/// how many executor threads compute concurrently (clamped to
/// `1..=executors`); it changes wall-clock time only, never a simulated
/// value.
///
/// If the caller's `config.observer` has sinks attached, each executor's
/// event stream is buffered in its thread and re-emitted through those
/// sinks after the join, grouped by executor id and tagged via
/// [`Observer::emit_from`] — a deterministic order, independent of host
/// scheduling.
///
/// # Errors
///
/// The first violated configuration constraint, or an ill-formed program.
///
/// # Panics
///
/// Panics if `build` is nondeterministic (executors then disagree on
/// global action results — the cross-check fails rather than returning
/// wrong data), or if a simulated heap is exhausted mid-run.
pub fn run_cluster<F>(
    build: F,
    config: &SystemConfig,
    engine_config: EngineConfig,
    host_threads: usize,
) -> Result<ClusterOutcome, ConfigError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    run_cluster_faulted(
        build,
        config,
        engine_config,
        host_threads,
        &FaultPlan::none(),
    )
}

/// [`run_cluster`] under a deterministic [`FaultPlan`]: injected executor
/// crashes, exchange message losses, and transient allocation failures,
/// all keyed to simulation structure (DESIGN.md §9).
///
/// With `plan.recover` set (the default), crashed executors are restarted
/// in place and the run completes with results bit-identical to a
/// fault-free run — lost partitions are recomputed through lineage or
/// restored from NVM checkpoints per `config.recovery`. With recovery
/// disabled, the first crash poisons the exchange and the run returns an
/// error once every executor has unwound.
///
/// # Errors
///
/// The first violated configuration constraint, an ill-formed program, or
/// an injected crash with recovery disabled.
///
/// # Panics
///
/// Same conditions as [`run_cluster`]: a genuine executor panic (heap
/// exhaustion, nondeterministic `build`) is re-raised on the driver with
/// the executor's panic message.
pub fn run_cluster_faulted<F>(
    build: F,
    config: &SystemConfig,
    engine_config: EngineConfig,
    host_threads: usize,
    plan: &FaultPlan,
) -> Result<ClusterOutcome, ConfigError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    run_cluster_inner(build, config, engine_config, host_threads, plan).map_err(|e| match e {
        RunError::Config(c) => c,
        other => ConfigError::new(other.to_string()),
    })
}

/// The typed-error cluster driver behind [`run_cluster_faulted`] (and
/// [`crate::RunBuilder`]): injected crashes with recovery disabled come
/// back as [`RunError::ExecutorCrash`] instead of a stringly
/// [`ConfigError`].
pub(crate) fn run_cluster_inner<F>(
    build: F,
    config: &SystemConfig,
    mut engine_config: EngineConfig,
    host_threads: usize,
    plan: &FaultPlan,
) -> Result<ClusterOutcome, RunError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    config.validate()?;
    // Mirror the single-runtime driver: the system config is the single
    // source of truth for data-movement costs, shuffle transport, and the
    // off-heap region, on every executor.
    engine_config.costs = config.costs;
    engine_config.transport = config.transport;
    engine_config.offheap_cache = config.offheap_cache;
    engine_config.region_alloc = config.region_alloc;
    let n_exec = config.executors;
    let (program, _, _) = build();
    sparklang::validate(&program)
        .map_err(|e| ConfigError::new(format!("ill-formed program {:?}: {e}", program.name)))?;
    let instr_plan = if config.mode.is_semantic() {
        analyze(&program).plan
    } else {
        InstrumentationPlan::default()
    };
    let seed = CfgSeed::of(config);
    // Surface runtime-construction errors on the driver, not as a panic
    // inside a worker thread.
    PantheraRuntime::new(&seed.rebuild(Observer::disabled())).map_err(ConfigError::new)?;
    let observe = config.observer.enabled();
    let checkpoint_every = match config.recovery {
        RecoveryPolicy::Recompute => 0,
        RecoveryPolicy::CheckpointEvery(n) => n,
    };
    let _quiet_hook = QuietUnwindGuard::new();

    let exchange = Exchange::with_transport(n_exec, host_threads, config.transport);
    let store = Arc::new(NvmCheckpointStore::new());
    let slots: Vec<Arc<RecoverySlot>> =
        (0..n_exec).map(|_| Arc::new(RecoverySlot::new())).collect();
    let client: Arc<dyn ExchangeClient> = if plan.is_empty() {
        Arc::clone(&exchange) as Arc<dyn ExchangeClient>
    } else {
        Arc::new(FaultedExchange::new(
            Arc::clone(&exchange),
            plan,
            slots.clone(),
        ))
    };
    let alloc_faults: Vec<Arc<Vec<u64>>> = (0..n_exec)
        .map(|e| {
            let mut v: Vec<u64> = plan
                .alloc_faults
                .iter()
                .filter(|p| p.exec == e)
                .map(|p| p.materialization)
                .collect();
            v.sort_unstable();
            Arc::new(v)
        })
        .collect();
    let crash_points: Vec<Arc<Vec<f64>>> = (0..n_exec)
        .map(|e| {
            let mut v: Vec<f64> = plan
                .vcrashes
                .iter()
                .filter(|p| p.exec == e)
                .map(|p| p.at_ns)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("crash times are finite"));
            Arc::new(v)
        })
        .collect();

    type ExecYield = (RunReport, Vec<(String, WireResult)>, Vec<(f64, Event)>);
    let mut yields: Vec<ExecYield> = Vec::with_capacity(usize::from(n_exec));
    let mut crashed: Option<(u16, u64)> = None;
    let mut panicked: Option<(u16, String)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(usize::from(n_exec));
        for exec in 0..n_exec {
            let build = &build;
            let instr_plan = &instr_plan;
            let seed = &seed;
            let engine_config = &engine_config;
            let exchange = Arc::clone(&exchange);
            let client = Arc::clone(&client);
            let store = Arc::clone(&store);
            let slot = Arc::clone(&slots[usize::from(exec)]);
            let my_faults = Arc::clone(&alloc_faults[usize::from(exec)]);
            let my_crashes = Arc::clone(&crash_points[usize::from(exec)]);
            handles.push(scope.spawn(move || -> Result<ExecYield, SlotFailure> {
                CLUSTER_THREAD.with(|c| c.set(true));
                // The executor's restart loop: one iteration per heap
                // incarnation, all in this same OS thread. An injected
                // crash unwinds the attempt; with recovery on, the next
                // iteration replays the program against a fresh runtime.
                loop {
                    if exchange.acquire_permit(exec).is_err() {
                        return Err(SlotFailure::PoisonedPeer);
                    }
                    let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| -> ExecYield {
                        let (program, fns, data) = build();
                        let sink =
                            observe.then(|| Rc::new(RefCell::new(BufSink { events: Vec::new() })));
                        let cfg = seed.rebuild(match &sink {
                            Some(s) => Observer::with_sink(s.clone()),
                            None => Observer::disabled(),
                        });
                        let mut runtime = PantheraRuntime::new(&cfg)
                            .unwrap_or_else(|e| panic!("executor {exec}: {e}"));
                        let (n_attempt, resume_ns, marks) = slot.with(|c| {
                            (
                                c.attempt,
                                // Resume at the *most recent* crash, not
                                // the outermost window start — a nested
                                // crash (during a prior replay) happened
                                // later, and time never rewinds.
                                c.last_crash_ns + plan.restart_penalty_ns,
                                c.marks.clone(),
                            )
                        });
                        if n_attempt > 0 {
                            // Restarts don't rewind time: the fresh heap's
                            // clock resumes at the crash instant plus the
                            // executor bring-up penalty, so every replayed
                            // stage — and the barrier times the survivors
                            // observe — carries the recovery cost.
                            runtime.heap_mut().mem_mut().compute(resume_ns);
                        }
                        if let Some(s) = &sink {
                            // Crashed incarnations took their event buffers
                            // with them; re-synthesize the crash/recovery
                            // timeline from the marks (already time-ordered
                            // — each executor's virtual clock is monotone).
                            let mut s = s.borrow_mut();
                            for (t, mark) in &marks {
                                let event = match mark {
                                    RecoveryMark::Crash { barrier } => {
                                        Event::ExecutorCrash { barrier: *barrier }
                                    }
                                    RecoveryMark::Start { attempt } => {
                                        Event::RecoveryStart { attempt: *attempt }
                                    }
                                    RecoveryMark::End {
                                        barrier,
                                        recovery_ns,
                                    } => Event::RecoveryEnd {
                                        barrier: *barrier,
                                        recovery_ns: *recovery_ns,
                                    },
                                };
                                s.on_event(*t, &event);
                            }
                        }
                        let ctx = ClusterCtx {
                            exec,
                            n_exec,
                            exchange: Arc::clone(&client),
                            recovery: Some(RecoveryCtx {
                                store: Arc::clone(&store) as Arc<dyn CheckpointStore>,
                                checkpoint_every,
                                slot: Arc::clone(&slot),
                                alloc_faults: Arc::clone(&my_faults),
                                alloc_retry_ns: plan.alloc_retry_ns,
                                journal: Arc::clone(&store) as Arc<dyn DepositJournal>,
                                crash_points: Arc::clone(&my_crashes),
                            }),
                        };
                        let mut engine =
                            Engine::with_cluster(runtime, fns, data, engine_config.clone(), ctx);
                        let outcome = engine.run(&program, instr_plan);
                        let monitored = engine.runtime().monitored_calls();
                        let mut report = RunReport::collect(
                            &program.name,
                            cfg.mode.label(),
                            engine.runtime().heap(),
                            engine.runtime().gc(),
                            outcome.stats,
                            monitored,
                        );
                        report.recovery = slot.with(|c| RecoveryStats {
                            executor_crashes: c.executor_crashes,
                            messages_lost: c.messages_lost,
                            alloc_faults: c.alloc_faults,
                            partitions_lost: c.partitions_lost,
                            partitions_recomputed: c.partitions_recomputed,
                            partitions_restored: c.partitions_restored,
                            stages_recomputed: c.stages_recomputed,
                            checkpoint_writes: c.checkpoint_writes,
                            checkpoint_bytes: c.checkpoint_bytes,
                            restore_bytes: c.restore_bytes,
                            journal_noops: c.journal_noops,
                            journal_torn: c.journal_torn,
                            recovery_s: c.recovery_ns / 1e9,
                        });
                        let results = outcome
                            .results
                            .iter()
                            .map(|(name, r)| (name.clone(), to_wire(r)))
                            .collect();
                        let events = sink
                            .map(|s| std::mem::take(&mut s.borrow_mut().events))
                            .unwrap_or_default();
                        (report, results, events)
                    }));
                    exchange.release_permit(exec);
                    let payload = match attempt {
                        Ok(y) => return Ok(y),
                        Err(payload) => payload,
                    };
                    match payload.downcast::<ClusterError>() {
                        Ok(err) => match *err {
                            ClusterError::InjectedCrash { barrier, at_ns, .. } if plan.recover => {
                                slot.with(|c| {
                                    // Physical-event counters tick once
                                    // per crash; window-scoped state only
                                    // *extends* under a nested crash (a
                                    // crash during a prior replay), so
                                    // the enclosing recovery window stays
                                    // open until the furthest barrier and
                                    // its span is charged exactly once.
                                    c.executor_crashes += 1;
                                    c.partitions_lost += c.live_partitions;
                                    c.live_partitions = 0;
                                    c.replay_until =
                                        Some(c.replay_until.map_or(barrier, |b| b.max(barrier)));
                                    if c.replay_depth == 0 {
                                        c.recovery_started_ns = at_ns;
                                    }
                                    c.replay_depth += 1;
                                    c.in_replay = true;
                                    c.last_crash_ns = at_ns;
                                    c.attempt += 1;
                                    let attempt = c.attempt;
                                    c.marks.push((at_ns, RecoveryMark::Crash { barrier }));
                                    c.marks.push((
                                        at_ns + plan.restart_penalty_ns,
                                        RecoveryMark::Start { attempt },
                                    ));
                                });
                                // Restart: next loop iteration replays.
                            }
                            ClusterError::InjectedCrash { exec, barrier, .. } => {
                                exchange.poison(ClusterError::Poisoned {
                                    exec,
                                    reason: format!(
                                        "injected crash at barrier {barrier}, recovery disabled"
                                    ),
                                });
                                return Err(SlotFailure::Crashed { exec, barrier });
                            }
                            ClusterError::Poisoned { .. } => {
                                return Err(SlotFailure::PoisonedPeer);
                            }
                        },
                        Err(payload) => {
                            let reason = panic_reason(payload.as_ref());
                            exchange.poison(ClusterError::Poisoned {
                                exec,
                                reason: reason.clone(),
                            });
                            return Err(SlotFailure::Panicked { exec, reason });
                        }
                    }
                }
            }));
        }
        for h in handles {
            match h
                .join()
                .expect("executor thread panicked outside the attempt guard")
            {
                Ok(y) => yields.push(y),
                Err(SlotFailure::Crashed { exec, barrier }) => {
                    if crashed.is_none() {
                        crashed = Some((exec, barrier));
                    }
                }
                Err(SlotFailure::Panicked { exec, reason }) => {
                    if panicked.is_none() {
                        panicked = Some((exec, reason));
                    }
                }
                Err(SlotFailure::PoisonedPeer) => {}
            }
        }
    });

    if let Some((exec, reason)) = panicked {
        panic!("executor {exec} panicked: {reason}");
    }
    if let Some((exec, barrier)) = crashed {
        return Err(RunError::ExecutorCrash { exec, barrier });
    }
    assert_eq!(
        yields.len(),
        usize::from(n_exec),
        "cluster run lost executors without a recorded failure"
    );

    for (exec, (_, results, _)) in yields.iter().enumerate().skip(1) {
        assert_eq!(
            results, &yields[0].1,
            "executor {exec} computed action results diverging from executor 0 — \
             is the `build` closure deterministic?"
        );
    }
    if observe {
        for (exec, (_, _, events)) in yields.iter().enumerate() {
            for (t_ns, event) in events {
                config.observer.emit_from(*t_ns, exec as u16, event);
            }
        }
    }
    let per_executor: Vec<RunReport> = yields.iter().map(|p| p.0.clone()).collect();
    let report = RunReport::aggregate(&per_executor);
    let results = yields[0]
        .1
        .iter()
        .map(|(name, r)| (name.clone(), from_wire(r)))
        .collect();
    Ok(ClusterOutcome {
        report,
        per_executor,
        results,
        shared_region_bytes: exchange.shared_region_bytes(),
    })
}

/// [`run_cluster`] with default engine knobs and the host-thread budget
/// from the `PANTHERA_HOST_THREADS` environment variable (defaulting to
/// one thread per executor).
///
/// # Errors
///
/// Same conditions as [`run_cluster`].
pub fn run_cluster_default<F>(
    build: F,
    config: &SystemConfig,
) -> Result<ClusterOutcome, ConfigError>
where
    F: Fn() -> (Program, FnTable, DataRegistry) + Sync,
{
    run_cluster(
        build,
        config,
        EngineConfig::default(),
        host_threads_from_env(usize::from(config.executors)),
    )
}

/// The host-thread budget from `PANTHERA_HOST_THREADS`, or `default` if
/// the variable is unset or unparsable. Zero is treated as unset.
pub fn host_threads_from_env(default: usize) -> usize {
    std::env::var("PANTHERA_HOST_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}
