//! The memory-management modes the evaluation compares (Section 5.2).

use std::fmt;

/// One of the paper's memory-management configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// Everything in DRAM — the normalization baseline of every figure.
    DramOnly,
    /// Young generation in DRAM; old generation's virtual space divided
    /// into chunks, each mapped to DRAM with probability equal to the
    /// DRAM ratio (the paper's strongest baseline, Section 5.2).
    Unmanaged,
    /// Kingsguard-Nursery: young generation in DRAM, entire old
    /// generation in NVM.
    KingsguardNursery,
    /// Kingsguard-Writes: like KN plus write-monitoring barriers that
    /// migrate write-intensive objects to a DRAM old space.
    KingsguardWrites,
    /// The paper's contribution: semantics-aware placement with a split
    /// old generation.
    Panthera,
}

impl MemoryMode {
    /// All modes in presentation order.
    pub const ALL: [MemoryMode; 5] = [
        MemoryMode::DramOnly,
        MemoryMode::Unmanaged,
        MemoryMode::KingsguardNursery,
        MemoryMode::KingsguardWrites,
        MemoryMode::Panthera,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            MemoryMode::DramOnly => "dram-only",
            MemoryMode::Unmanaged => "unmanaged",
            MemoryMode::KingsguardNursery => "kingsguard-nursery",
            MemoryMode::KingsguardWrites => "kingsguard-writes",
            MemoryMode::Panthera => "panthera",
        }
    }

    /// Does this mode use Panthera's semantic machinery (tags, lineage
    /// propagation, monitoring)?
    pub fn is_semantic(self) -> bool {
        matches!(self, MemoryMode::Panthera)
    }

    /// Does the mode install any NVM at all?
    pub fn uses_nvm(self) -> bool {
        !matches!(self, MemoryMode::DramOnly)
    }
}

impl fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = MemoryMode::ALL.iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MemoryMode::ALL.len());
    }

    #[test]
    fn semantics_flag() {
        assert!(MemoryMode::Panthera.is_semantic());
        assert!(!MemoryMode::Unmanaged.is_semantic());
        assert!(!MemoryMode::DramOnly.uses_nvm());
        assert!(MemoryMode::KingsguardNursery.uses_nvm());
    }
}
