//! Property tests for the IR: pretty-print/parse round-trips and
//! validation totality over randomly built programs.

use proptest::prelude::*;
use sparklang::{parse, validate, ActionKind, Expr, Pretty, Program, ProgramBuilder, StorageLevel};

#[derive(Debug, Clone)]
enum Op {
    NewFromSource,
    Chain(u8),
    Persist(u8),
    Unpersist,
    Count,
    Collect,
    LoopAround(u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::NewFromSource),
        (0u8..8).prop_map(Op::Chain),
        (0u8..10).prop_map(Op::Persist),
        Just(Op::Unpersist),
        Just(Op::Count),
        Just(Op::Collect),
        (1u8..4).prop_map(Op::LoopAround),
    ]
}

fn build(ops: &[Op]) -> Program {
    let mut b = ProgramBuilder::new("random");
    let f = b.map_fn(|p| p.clone());
    let g = b.reduce_fn(|a, _| a.clone());
    let fm = b.flat_map_fn(|p| vec![p.clone()]);
    let fl = b.filter_fn(|_| true);
    let mut vars = Vec::new();
    let mut n = 0usize;

    let chain = |_b: &ProgramBuilder, e: Expr, which: u8| -> Expr {
        match which {
            0 => e.map(f),
            1 => e.map_values(f),
            2 => e.flat_map(fm),
            3 => e.filter(fl),
            4 => e.distinct(),
            5 => e.reduce_by_key(g),
            6 => e.sort_by_key(),
            _ => e.sample(0.5, 9),
        }
    };
    let _ = &chain;

    let mut pending_loop: Option<(u8, usize)> = None;
    for (i, o) in ops.iter().enumerate() {
        match o {
            Op::NewFromSource => {
                n += 1;
                let src = b.source(&format!("s{n}"));
                vars.push(b.bind(&format!("v{n}"), src));
            }
            Op::Chain(which) if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                let e = chain(&b, b.var(v), *which);
                b.rebind(v, e);
            }
            Op::Persist(l) if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                b.persist(v, StorageLevel::ALL[*l as usize % StorageLevel::ALL.len()]);
            }
            Op::Unpersist if !vars.is_empty() => {
                let v = vars[i % vars.len()];
                b.unpersist(v);
            }
            Op::Count if !vars.is_empty() => {
                b.action(vars[i % vars.len()], ActionKind::Count);
            }
            Op::Collect if !vars.is_empty() => {
                b.action(vars[i % vars.len()], ActionKind::Collect);
            }
            Op::LoopAround(k) if !vars.is_empty() => {
                // Queue a loop around the next var's action.
                pending_loop = Some((*k, i % vars.len()));
            }
            _ => {}
        }
        if let Some((k, vi)) = pending_loop.take() {
            let v = vars[vi];
            b.loop_n(k as u32, |b| {
                b.action(v, ActionKind::Count);
            });
        }
    }
    if vars.is_empty() {
        let src = b.source("fallback");
        let v = b.bind("v", src);
        b.action(v, ActionKind::Count);
    }
    b.finish().0
}

proptest! {
    /// pretty -> parse -> pretty is a fixed point, and the reparsed AST is
    /// structurally identical (modulo the function-table size, which the
    /// parser infers from the highest id it sees).
    #[test]
    fn pretty_parse_roundtrip(ops in prop::collection::vec(op(), 1..24)) {
        let p = build(&ops);
        let text = Pretty(&p).to_string();
        let reparsed = parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- source ---\n{text}")))?;
        prop_assert_eq!(&p.stmts, &reparsed.stmts);
        prop_assert_eq!(&p.var_names, &reparsed.var_names);
        prop_assert_eq!(Pretty(&reparsed).to_string(), text);
    }

    /// The parser is total: arbitrary input returns `Ok` or `Err`, never
    /// panics, and errors carry plausible line numbers.
    #[test]
    fn parser_never_panics(src in "\\PC*") {
        match parse(&src) {
            Ok(p) => {
                // Anything that parses must also pretty-print.
                let _ = Pretty(&p).to_string();
            }
            Err(e) => {
                prop_assert!(e.line >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Mutating one byte of a valid program never panics the parser.
    #[test]
    fn parser_survives_mutations(
        ops in prop::collection::vec(op(), 1..12),
        idx in any::<prop::sample::Index>(),
        byte in any::<u8>(),
    ) {
        let p = build(&ops);
        let mut text = Pretty(&p).to_string().into_bytes();
        let i = idx.index(text.len());
        text[i] = byte;
        if let Ok(s) = String::from_utf8(text) {
            let _ = parse(&s); // must not panic
        }
    }

    /// Everything the builder produces validates, and so does its reparse.
    #[test]
    fn built_programs_validate(ops in prop::collection::vec(op(), 1..24)) {
        let p = build(&ops);
        prop_assert!(validate(&p).is_ok());
        let text = Pretty(&p).to_string();
        let reparsed = parse(&text).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(validate(&reparsed).is_ok());
    }
}
