//! Fluent construction of driver programs, mirroring how the paper's Spark
//! programs read (Figure 2a).
//!
//! ```
//! use sparklang::{ProgramBuilder, StorageLevel, ActionKind};
//! use mheap::Payload;
//!
//! let mut b = ProgramBuilder::new("pagerank-sketch");
//! let parse = b.map_fn(|r| r.clone());
//! let lines = b.source("wiki");
//! let links = b.bind("links", lines.map(parse).distinct().group_by_key());
//! b.persist(links, StorageLevel::MemoryOnly);
//! b.action(links, ActionKind::Count);
//! let (program, fns) = b.finish();
//! assert_eq!(program.n_vars(), 1);
//! assert_eq!(fns.len(), 1);
//! ```

use crate::ast::{ActionKind, FuncId, Program, RddExpr, Stmt, StorageLevel, Transform, VarId};
use mheap::Payload;

/// A boxed one-to-one record function.
pub type MapFn = Box<dyn Fn(&Payload) -> Payload>;
/// A boxed one-to-many record function.
pub type FlatMapFn = Box<dyn Fn(&Payload) -> Vec<Payload>>;
/// A boxed record predicate.
pub type FilterFn = Box<dyn Fn(&Payload) -> bool>;
/// A boxed binary combiner.
pub type ReduceFn = Box<dyn Fn(&Payload, &Payload) -> Payload>;

/// A user closure invoked per record by the execution engine.
pub enum UserFn {
    /// One-to-one record function.
    Map(MapFn),
    /// One-to-many record function.
    FlatMap(FlatMapFn),
    /// Record predicate.
    Filter(FilterFn),
    /// Binary combiner for reductions.
    Reduce(ReduceFn),
}

impl std::fmt::Debug for UserFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            UserFn::Map(_) => "map",
            UserFn::FlatMap(_) => "flatMap",
            UserFn::Filter(_) => "filter",
            UserFn::Reduce(_) => "reduce",
        };
        write!(f, "UserFn::{kind}")
    }
}

/// The table of user functions a program references.
#[derive(Debug, Default)]
pub struct FnTable {
    fns: Vec<UserFn>,
}

impl FnTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function, returning its id.
    pub fn add(&mut self, f: UserFn) -> FuncId {
        self.fns.push(f);
        FuncId((self.fns.len() - 1) as u32)
    }

    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown.
    pub fn get(&self, id: FuncId) -> &UserFn {
        &self.fns[id.0 as usize]
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// True if no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

/// An RDD-valued expression under construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr(pub(crate) RddExpr);

impl Expr {
    fn apply1(self, transform: Transform) -> Expr {
        Expr(RddExpr::Apply {
            transform,
            inputs: vec![self.0],
        })
    }

    fn apply2(self, transform: Transform, other: Expr) -> Expr {
        Expr(RddExpr::Apply {
            transform,
            inputs: vec![self.0, other.0],
        })
    }

    /// `rdd.map(f)`
    pub fn map(self, f: FuncId) -> Expr {
        self.apply1(Transform::Map(f))
    }

    /// `rdd.mapValues(f)`
    pub fn map_values(self, f: FuncId) -> Expr {
        self.apply1(Transform::MapValues(f))
    }

    /// `rdd.flatMap(f)`
    pub fn flat_map(self, f: FuncId) -> Expr {
        self.apply1(Transform::FlatMap(f))
    }

    /// `rdd.filter(f)`
    pub fn filter(self, f: FuncId) -> Expr {
        self.apply1(Transform::Filter(f))
    }

    /// `rdd.distinct()`
    pub fn distinct(self) -> Expr {
        self.apply1(Transform::Distinct)
    }

    /// `rdd.groupByKey()`
    pub fn group_by_key(self) -> Expr {
        self.apply1(Transform::GroupByKey)
    }

    /// `rdd.reduceByKey(f)`
    pub fn reduce_by_key(self, f: FuncId) -> Expr {
        self.apply1(Transform::ReduceByKey(f))
    }

    /// `rdd.join(other)`
    pub fn join(self, other: Expr) -> Expr {
        self.apply2(Transform::Join, other)
    }

    /// `rdd.values`
    pub fn values(self) -> Expr {
        self.apply1(Transform::Values)
    }

    /// `rdd.keys`
    pub fn keys(self) -> Expr {
        self.apply1(Transform::Keys)
    }

    /// `rdd.union(other)`
    pub fn union(self, other: Expr) -> Expr {
        self.apply2(Transform::Union, other)
    }

    /// `rdd.sortByKey()`
    pub fn sort_by_key(self) -> Expr {
        self.apply1(Transform::SortByKey)
    }

    /// `rdd.sample(false, fraction, seed)` — Bernoulli sampling.
    pub fn sample(self, fraction: f64, seed: u64) -> Expr {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.apply1(Transform::Sample { fraction, seed })
    }

    /// The underlying IR expression.
    pub fn into_inner(self) -> RddExpr {
        self.0
    }
}

/// Builds a [`Program`] and its [`FnTable`] together.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    var_names: Vec<String>,
    fns: FnTable,
    /// Statement stack: the last element is the innermost open block.
    blocks: Vec<Vec<Stmt>>,
    loop_counts: Vec<u32>,
}

impl ProgramBuilder {
    /// Start a program named `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_string(),
            var_names: Vec::new(),
            fns: FnTable::new(),
            blocks: vec![Vec::new()],
            loop_counts: Vec::new(),
        }
    }

    /// Register a one-to-one record function.
    pub fn map_fn(&mut self, f: impl Fn(&Payload) -> Payload + 'static) -> FuncId {
        self.fns.add(UserFn::Map(Box::new(f)))
    }

    /// Register a one-to-many record function.
    pub fn flat_map_fn(&mut self, f: impl Fn(&Payload) -> Vec<Payload> + 'static) -> FuncId {
        self.fns.add(UserFn::FlatMap(Box::new(f)))
    }

    /// Register a record predicate.
    pub fn filter_fn(&mut self, f: impl Fn(&Payload) -> bool + 'static) -> FuncId {
        self.fns.add(UserFn::Filter(Box::new(f)))
    }

    /// Register a binary combiner.
    pub fn reduce_fn(&mut self, f: impl Fn(&Payload, &Payload) -> Payload + 'static) -> FuncId {
        self.fns.add(UserFn::Reduce(Box::new(f)))
    }

    /// An input source expression (resolved by name at run time).
    pub fn source(&mut self, name: &str) -> Expr {
        Expr(RddExpr::Source(name.to_string()))
    }

    /// Declare a fresh variable and bind it: `let var = expr`.
    pub fn bind(&mut self, name: &str, expr: Expr) -> VarId {
        let var = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        self.stmt(Stmt::Bind { var, expr: expr.0 });
        var
    }

    /// Re-assign an existing variable: `var = expr`.
    pub fn rebind(&mut self, var: VarId, expr: Expr) {
        assert!((var.0 as usize) < self.var_names.len(), "unknown variable");
        self.stmt(Stmt::Bind { var, expr: expr.0 });
    }

    /// Reference a variable in an expression.
    pub fn var(&self, var: VarId) -> Expr {
        assert!((var.0 as usize) < self.var_names.len(), "unknown variable");
        Expr(RddExpr::Var(var))
    }

    /// `var.persist(level)`
    pub fn persist(&mut self, var: VarId, level: StorageLevel) {
        self.stmt(Stmt::Persist { var, level });
    }

    /// `var.unpersist()`
    pub fn unpersist(&mut self, var: VarId) {
        self.stmt(Stmt::Unpersist { var });
    }

    /// `var.checkpoint()` — snapshot the variable's RDD to durable NVM
    /// storage at its next materialization (cluster recovery restores it
    /// from there instead of recomputing its lineage).
    pub fn checkpoint(&mut self, var: VarId) {
        self.stmt(Stmt::Checkpoint { var });
    }

    /// `var.count()` / `var.collect()` / `var.reduce(f)`
    pub fn action(&mut self, var: VarId, action: ActionKind) {
        self.stmt(Stmt::Action { var, action });
    }

    /// `for i in 1..=n { ... }` — the closure builds the loop body.
    pub fn loop_n(&mut self, n: u32, body: impl FnOnce(&mut ProgramBuilder)) {
        self.blocks.push(Vec::new());
        self.loop_counts.push(n);
        body(self);
        let stmts = self.blocks.pop().expect("unbalanced loop block");
        let n = self.loop_counts.pop().expect("unbalanced loop count");
        self.stmt(Stmt::Loop { n, body: stmts });
    }

    fn stmt(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("no open block").push(s);
    }

    /// Finish, producing the program and its function table.
    ///
    /// # Panics
    ///
    /// Panics if a loop block is still open.
    pub fn finish(mut self) -> (Program, FnTable) {
        assert_eq!(self.blocks.len(), 1, "unclosed loop block");
        let stmts = self.blocks.pop().unwrap();
        (
            Program {
                name: self.name,
                stmts,
                var_names: self.var_names,
                n_funcs: self.fns.len() as u32,
            },
            self.fns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_loops() {
        let mut b = ProgramBuilder::new("t");
        let src = b.source("data");
        let x = b.bind("x", src);
        b.loop_n(3, |b| {
            let e = b.var(x).distinct();
            b.rebind(x, e);
            b.loop_n(2, |b| {
                b.action(x, ActionKind::Count);
            });
        });
        let (p, _) = b.finish();
        assert_eq!(p.stmts.len(), 2);
        match &p.stmts[1] {
            Stmt::Loop { n, body } => {
                assert_eq!(*n, 3);
                assert_eq!(body.len(), 2);
                assert!(matches!(body[1], Stmt::Loop { n: 2, .. }));
            }
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn fn_table_dispatch() {
        let mut b = ProgramBuilder::new("t");
        let double = b.map_fn(|p| Payload::Long(p.as_long().unwrap() * 2));
        let (_, fns) = b.finish();
        match fns.get(double) {
            UserFn::Map(f) => assert_eq!(f(&Payload::Long(4)).as_long(), Some(8)),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rebind_requires_declared_var() {
        let mut b = ProgramBuilder::new("t");
        let e = b.source("s");
        b.rebind(VarId(9), e);
    }

    #[test]
    fn expression_chaining_builds_apply_trees() {
        let mut b = ProgramBuilder::new("t");
        let f = b.map_fn(|p| p.clone());
        let g = b.reduce_fn(|a, _| a.clone());
        let src = b.source("s");
        let e = src.map(f).reduce_by_key(g);
        match e.into_inner() {
            RddExpr::Apply {
                transform: Transform::ReduceByKey(got),
                inputs,
            } => {
                assert_eq!(got, g);
                assert!(matches!(
                    inputs[0],
                    RddExpr::Apply {
                        transform: Transform::Map(_),
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
