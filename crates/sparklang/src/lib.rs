#![deny(missing_docs)]

//! Driver-program IR for the Panthera reproduction.
//!
//! The paper's static analysis (Section 3) reads Spark driver programs at
//! the source level: which RDD variables are defined or used inside which
//! loops, where `persist` is invoked and with which storage level, and
//! where actions force materialization. This crate is that surface — a
//! small language of RDD transformations, persists, actions, and loops,
//! with a fluent [`ProgramBuilder`] that makes workload definitions read
//! like the paper's Figure 2(a):
//!
//! ```
//! use sparklang::{ProgramBuilder, StorageLevel, ActionKind};
//! use mheap::Payload;
//!
//! let mut b = ProgramBuilder::new("pagerank");
//! let parse = b.map_fn(|line| line.clone());
//! let one = b.map_fn(|_| Payload::Double(1.0));
//! let lines = b.source("wikipedia-de");
//! let links = b.bind("links", lines.map(parse).distinct().group_by_key());
//! b.persist(links, StorageLevel::MemoryOnly);
//! let ranks = b.bind("ranks", b.var(links).map_values(one));
//! b.loop_n(10, |b| {
//!     // ... contribs = links.join(ranks)... as in Figure 2(a)
//!     let _ = b.var(ranks);
//! });
//! b.action(ranks, ActionKind::Count);
//! let (program, fns) = b.finish();
//! assert_eq!(program.name, "pagerank");
//! assert!(fns.len() >= 2);
//! ```
//!
//! The same IR is *executed* by the `sparklet` engine (the closures live in
//! the [`FnTable`]) and *analyzed* by `panthera-analysis`, which walks it
//! with [`visit::walk`] to infer a [`MemoryTag`] per persisted variable.

pub mod ast;
mod builder;
mod parse;
mod pretty;
mod validate;
pub mod visit;

pub use ast::{
    ActionKind, FuncId, LoopId, MemoryTag, Program, RddExpr, Stmt, StmtId, StorageLevel, Transform,
    VarId,
};
pub use builder::{Expr, FilterFn, FlatMapFn, FnTable, MapFn, ProgramBuilder, ReduceFn, UserFn};
pub use parse::{parse, ParseError};
pub use pretty::Pretty;
pub use validate::{validate, ValidateProgramError};
