//! Pretty-printing of driver programs.
//!
//! The output is the crate's concrete syntax: it round-trips through
//! [`parse`](crate::parse), so programs can be stored as text (closures
//! are referenced by function id, e.g. `map(f0)`, and bound to a
//! [`FnTable`](crate::FnTable) at run time).

use crate::ast::{Program, RddExpr, Stmt, Transform};
use std::fmt;

/// Wrapper giving a [`Program`] a readable, parseable `Display`.
#[derive(Debug, Clone, Copy)]
pub struct Pretty<'a>(pub &'a Program);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} {{", self.0.name)?;
        print_block(f, self.0, &self.0.stmts, 1)?;
        write!(f, "}}")
    }
}

fn indent(f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        write!(f, "  ")?;
    }
    Ok(())
}

fn print_block(
    f: &mut fmt::Formatter<'_>,
    p: &Program,
    stmts: &[Stmt],
    depth: usize,
) -> fmt::Result {
    for s in stmts {
        indent(f, depth)?;
        match s {
            Stmt::Bind { var, expr } => {
                writeln!(f, "{} = {}", p.var_name(*var), ExprFmt(p, expr))?;
            }
            Stmt::Persist { var, level } => {
                writeln!(f, "{}.persist({level})", p.var_name(*var))?;
            }
            Stmt::Unpersist { var } => writeln!(f, "{}.unpersist()", p.var_name(*var))?,
            Stmt::Checkpoint { var } => writeln!(f, "{}.checkpoint()", p.var_name(*var))?,
            Stmt::Action { var, action } => match action {
                crate::ast::ActionKind::Reduce(func) => {
                    writeln!(f, "{}.reduce(f{})", p.var_name(*var), func.0)?;
                }
                other => writeln!(f, "{}.{}()", p.var_name(*var), other.name())?,
            },
            Stmt::Loop { n, body } => {
                writeln!(f, "for i in 1..={n} {{")?;
                print_block(f, p, body, depth + 1)?;
                indent(f, depth)?;
                writeln!(f, "}}")?;
            }
        }
    }
    Ok(())
}

struct ExprFmt<'a>(&'a Program, &'a RddExpr);

impl fmt::Display for ExprFmt<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.1 {
            RddExpr::Var(v) => write!(f, "{}", self.0.var_name(*v)),
            RddExpr::Source(name) => write!(f, "source({name:?})"),
            RddExpr::Apply { transform, inputs } => {
                write!(f, "{}", ExprFmt(self.0, &inputs[0]))?;
                write!(f, ".{}(", transform.name())?;
                let mut first = true;
                // The transformation's own arguments come first...
                match transform {
                    Transform::Map(func)
                    | Transform::MapValues(func)
                    | Transform::FlatMap(func)
                    | Transform::Filter(func)
                    | Transform::ReduceByKey(func) => {
                        write!(f, "f{}", func.0)?;
                        first = false;
                    }
                    Transform::Sample { fraction, seed } => {
                        write!(f, "{fraction}, {seed}")?;
                        first = false;
                    }
                    _ => {}
                }
                // ...then any further input RDDs (join/union).
                for input in inputs.iter().skip(1) {
                    if !first {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", ExprFmt(self.0, input))?;
                    first = false;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::{ActionKind, Pretty, StorageLevel};

    #[test]
    fn renders_programs() {
        let mut b = ProgramBuilder::new("demo");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("input");
        let x = b.bind("x", src.map(f));
        b.persist(x, StorageLevel::MemoryOnly);
        b.loop_n(2, |b| {
            let e = b.var(x).distinct();
            b.rebind(x, e);
        });
        b.action(x, ActionKind::Count);
        let (p, _) = b.finish();
        let text = Pretty(&p).to_string();
        assert!(text.contains("x = source(\"input\").map(f0)"));
        assert!(text.contains("x.persist(MEMORY_ONLY)"));
        assert!(text.contains("for i in 1..=2 {"));
        assert!(text.contains("x = x.distinct()"));
        assert!(text.contains("x.count()"));
    }

    #[test]
    fn renders_new_transforms() {
        let mut b = ProgramBuilder::new("demo");
        let src = b.source("a");
        let x = b.bind("x", src.sort_by_key().sample(0.5, 7));
        b.action(x, ActionKind::Count);
        let (p, _) = b.finish();
        let text = Pretty(&p).to_string();
        assert!(text.contains("sortByKey()"));
        assert!(text.contains("sample(0.5, 7)"));
    }

    #[test]
    fn renders_binary_transforms() {
        let mut b = ProgramBuilder::new("demo");
        let s1 = b.source("a");
        let s2 = b.source("b");
        let a = b.bind("a", s1);
        let bb = b.bind("b", s2);
        let joined = b.var(a).join(b.var(bb));
        b.bind("j", joined);
        let (p, _) = b.finish();
        assert!(Pretty(&p).to_string().contains("j = a.join(b)"));
    }

    #[test]
    fn renders_reduce_actions_with_func() {
        let mut b = ProgramBuilder::new("demo");
        let f = b.reduce_fn(|a, _| a.clone());
        let src = b.source("a");
        let x = b.bind("x", src);
        b.action(x, ActionKind::Reduce(f));
        let (p, _) = b.finish();
        assert!(Pretty(&p).to_string().contains("x.reduce(f0)"));
    }
}
