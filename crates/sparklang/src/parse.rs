//! A parser for the concrete syntax the pretty-printer emits, so programs
//! can live in text files and round-trip:
//!
//! ```text
//! program pagerank {
//!   links = source("wiki").distinct().groupByKey()
//!   links.persist(MEMORY_ONLY)
//!   ranks = links.mapValues(f1)
//!   for i in 1..=10 {
//!     contribs = links.join(ranks).values().flatMap(f2)
//!     contribs.persist(MEMORY_AND_DISK_SER)
//!     ranks = contribs.reduceByKey(f3).mapValues(f4)
//!   }
//!   ranks.count()
//! }
//! ```
//!
//! Closures are referenced by id (`f0`, `f1`, ...) and bound to a
//! [`FnTable`](crate::FnTable) at run time.

use crate::ast::{ActionKind, FuncId, Program, RddExpr, Stmt, StorageLevel, Transform, VarId};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Number(f64),
    Dot,
    Comma,
    Eq,
    LParen,
    RParen,
    LBrace,
    RBrace,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        for c in self.src[self.pos..self.pos + n].chars() {
            if c == '\n' {
                self.line += 1;
            }
        }
        self.pos += n;
    }

    fn skip_ws(&mut self) {
        loop {
            let rest = self.rest();
            let trimmed = rest.trim_start_matches([' ', '\t', '\r', '\n']);
            let skipped = rest.len() - trimmed.len();
            if skipped > 0 {
                self.bump(skipped);
            }
            // Line comments.
            if self.rest().starts_with("//") {
                let end = self.rest().find('\n').unwrap_or(self.rest().len());
                self.bump(end);
                continue;
            }
            if skipped == 0 {
                break;
            }
        }
    }

    fn next(&mut self) -> Result<Option<(Tok, usize)>, ParseError> {
        self.skip_ws();
        let line = self.line;
        let rest = self.rest();
        let Some(c) = rest.chars().next() else {
            return Ok(None);
        };
        let tok = match c {
            '.' => {
                // "1..=10" range dots are consumed by number parsing; a
                // bare "..=" appears after a number token.
                if rest.starts_with("..=") {
                    self.bump(3);
                    return self.next();
                }
                self.bump(1);
                Tok::Dot
            }
            ',' => {
                self.bump(1);
                Tok::Comma
            }
            '=' => {
                self.bump(1);
                Tok::Eq
            }
            '(' => {
                self.bump(1);
                Tok::LParen
            }
            ')' => {
                self.bump(1);
                Tok::RParen
            }
            '{' => {
                self.bump(1);
                Tok::LBrace
            }
            '}' => {
                self.bump(1);
                Tok::RBrace
            }
            '"' => {
                let body = &rest[1..];
                let end = body
                    .find('"')
                    .ok_or_else(|| self.err("unterminated string literal"))?;
                let s = body[..end].to_string();
                self.bump(end + 2);
                Tok::Str(s)
            }
            c if c.is_ascii_digit() => {
                // A number: integer or float. Stop before "..=" ranges.
                let mut len = 0;
                let bytes = rest.as_bytes();
                while len < bytes.len() && bytes[len].is_ascii_digit() {
                    len += 1;
                }
                if len < bytes.len() && bytes[len] == b'.' && !rest[len..].starts_with("..") {
                    len += 1;
                    while len < bytes.len() && bytes[len].is_ascii_digit() {
                        len += 1;
                    }
                }
                let text = &rest[..len];
                let n: f64 = text
                    .parse()
                    .map_err(|_| self.err(format!("bad number {text:?}")))?;
                self.bump(len);
                Tok::Number(n)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // Hyphens are allowed inside identifiers ("graphx-cc");
                // the language has no arithmetic to clash with.
                let len = rest
                    .find(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_' || ch == '-'))
                    .unwrap_or(rest.len());
                let s = rest[..len].to_string();
                self.bump(len);
                Tok::Ident(s)
            }
            other => return Err(self.err(format!("unexpected character {other:?}"))),
        };
        Ok(Some((tok, line)))
    }
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
    max_func: u32,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!("expected {want:?}, got {got:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn func_id(&mut self) -> Result<FuncId, ParseError> {
        let name = self.ident()?;
        let id = name
            .strip_prefix('f')
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| self.err(format!("expected a function id like f0, got {name:?}")))?;
        self.max_func = self.max_func.max(id + 1);
        Ok(FuncId(id))
    }

    fn var_lookup(&self, name: &str) -> Result<VarId, ParseError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown variable {name:?}")))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let kw = self.ident()?;
        if kw != "program" {
            return Err(self.err("expected `program <name> { ... }`"));
        }
        let name = self.ident()?;
        self.expect(Tok::LBrace)?;
        let stmts = self.block()?;
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after program body"));
        }
        Ok(Program {
            name,
            stmts,
            var_names: self.var_names.clone(),
            n_funcs: self.max_func,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.pos += 1;
                    return Ok(stmts);
                }
                Some(Tok::Ident(kw)) if kw == "for" => {
                    self.pos += 1;
                    stmts.push(self.loop_stmt()?);
                }
                Some(Tok::Ident(_)) => stmts.push(self.simple_stmt()?),
                other => return Err(self.err(format!("expected a statement, got {other:?}"))),
            }
        }
    }

    /// `for i in 1..=N { ... }` — the `..=` was consumed by the lexer.
    fn loop_stmt(&mut self) -> Result<Stmt, ParseError> {
        let _i = self.ident()?;
        let kw = self.ident()?;
        if kw != "in" {
            return Err(self.err("expected `in` in loop header"));
        }
        let Tok::Number(start) = self.next()? else {
            return Err(self.err("expected loop start bound"));
        };
        if start != 1.0 {
            return Err(self.err("loops must start at 1"));
        }
        let Tok::Number(n) = self.next()? else {
            return Err(self.err("expected loop end bound"));
        };
        self.expect(Tok::LBrace)?;
        let body = self.block()?;
        Ok(Stmt::Loop { n: n as u32, body })
    }

    /// `x = expr` or `x.method(...)`.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let name = self.ident()?;
        match self.next()? {
            Tok::Eq => {
                let expr = self.expr()?;
                let var = *self.vars.entry(name.clone()).or_insert_with(|| {
                    self.var_names.push(name.clone());
                    VarId(self.var_names.len() as u32 - 1)
                });
                Ok(Stmt::Bind { var, expr })
            }
            Tok::Dot => {
                let var = self.var_lookup(&name)?;
                let method = self.ident()?;
                self.expect(Tok::LParen)?;
                let stmt = match method.as_str() {
                    "persist" => {
                        let level = self.storage_level()?;
                        Stmt::Persist { var, level }
                    }
                    "unpersist" => Stmt::Unpersist { var },
                    "checkpoint" => Stmt::Checkpoint { var },
                    "count" => Stmt::Action {
                        var,
                        action: ActionKind::Count,
                    },
                    "collect" => Stmt::Action {
                        var,
                        action: ActionKind::Collect,
                    },
                    "reduce" => {
                        let f = self.func_id()?;
                        Stmt::Action {
                            var,
                            action: ActionKind::Reduce(f),
                        }
                    }
                    other => {
                        return Err(self.err(format!(
                            "unknown statement method {other:?} (transformations \
                             belong on the right of `=`)"
                        )))
                    }
                };
                self.expect(Tok::RParen)?;
                Ok(stmt)
            }
            other => Err(self.err(format!("expected `=` or `.`, got {other:?}"))),
        }
    }

    fn storage_level(&mut self) -> Result<StorageLevel, ParseError> {
        let name = self.ident()?;
        StorageLevel::ALL
            .into_iter()
            .find(|l| l.to_string() == name)
            .ok_or_else(|| self.err(format!("unknown storage level {name:?}")))
    }

    /// `primary (.method(args))*`
    fn expr(&mut self) -> Result<RddExpr, ParseError> {
        let mut e = self.primary()?;
        while matches!(self.peek(), Some(Tok::Dot)) {
            self.pos += 1;
            let method = self.ident()?;
            self.expect(Tok::LParen)?;
            e = self.apply(method, e)?;
            self.expect(Tok::RParen)?;
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<RddExpr, ParseError> {
        match self.next()? {
            Tok::Ident(name) if name == "source" => {
                self.expect(Tok::LParen)?;
                let Tok::Str(s) = self.next()? else {
                    return Err(self.err("source() takes a string literal"));
                };
                self.expect(Tok::RParen)?;
                Ok(RddExpr::Source(s))
            }
            Tok::Ident(name) => Ok(RddExpr::Var(self.var_lookup(&name)?)),
            other => Err(self.err(format!("expected an expression, got {other:?}"))),
        }
    }

    fn apply(&mut self, method: String, recv: RddExpr) -> Result<RddExpr, ParseError> {
        let (transform, inputs) = match method.as_str() {
            "map" => (Transform::Map(self.func_id()?), vec![recv]),
            "mapValues" => (Transform::MapValues(self.func_id()?), vec![recv]),
            "flatMap" => (Transform::FlatMap(self.func_id()?), vec![recv]),
            "filter" => (Transform::Filter(self.func_id()?), vec![recv]),
            "reduceByKey" => (Transform::ReduceByKey(self.func_id()?), vec![recv]),
            "distinct" => (Transform::Distinct, vec![recv]),
            "groupByKey" => (Transform::GroupByKey, vec![recv]),
            "sortByKey" => (Transform::SortByKey, vec![recv]),
            "values" => (Transform::Values, vec![recv]),
            "keys" => (Transform::Keys, vec![recv]),
            "sample" => {
                let Tok::Number(fraction) = self.next()? else {
                    return Err(self.err("sample() takes (fraction, seed)"));
                };
                self.expect(Tok::Comma)?;
                let Tok::Number(seed) = self.next()? else {
                    return Err(self.err("sample() takes (fraction, seed)"));
                };
                (
                    Transform::Sample {
                        fraction,
                        seed: seed as u64,
                    },
                    vec![recv],
                )
            }
            "join" => {
                let rhs = self.expr()?;
                (Transform::Join, vec![recv, rhs])
            }
            "union" => {
                let rhs = self.expr()?;
                (Transform::Union, vec![recv, rhs])
            }
            other => return Err(self.err(format!("unknown transformation {other:?}"))),
        };
        Ok(RddExpr::Apply { transform, inputs })
    }
}

/// Parse a program from its concrete syntax.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
///
/// # Examples
///
/// ```
/// let src = r#"
/// program cache {
///   xs = source("nums").distinct()
///   xs.persist(MEMORY_ONLY)
///   for i in 1..=4 {
///     xs.count()
///   }
/// }
/// "#;
/// let program = sparklang::parse(src).expect("parses");
/// assert_eq!(program.name, "cache");
/// assert_eq!(program.n_vars(), 1);
/// sparklang::validate(&program).expect("well-formed");
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut toks = Vec::new();
    while let Some(t) = lexer.next()? {
        toks.push(t);
    }
    let mut parser = Parser {
        toks,
        pos: 0,
        vars: HashMap::new(),
        var_names: Vec::new(),
        max_func: 0,
    };
    parser.program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, Pretty, ProgramBuilder};

    #[test]
    fn parses_the_docs_example() {
        let src = r#"
        program pagerank {
          links = source("wiki").distinct().groupByKey()
          links.persist(MEMORY_ONLY)
          ranks = links.mapValues(f1)
          for i in 1..=10 {
            contribs = links.join(ranks).values().flatMap(f2)
            contribs.persist(MEMORY_AND_DISK_SER)
            ranks = contribs.reduceByKey(f3).mapValues(f4)
          }
          ranks.count()
        }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.name, "pagerank");
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.n_funcs, 5, "highest id f4 implies five functions");
        validate(&p).unwrap();
    }

    #[test]
    fn roundtrips_builder_output() {
        let mut b = ProgramBuilder::new("rt");
        let f = b.map_fn(|p| p.clone());
        let g = b.reduce_fn(|a, _| a.clone());
        let s1 = b.source("a");
        let s2 = b.source("b");
        let x = b.bind("x", s1.map(f).sample(0.25, 7));
        let y = b.bind("y", s2);
        b.persist(x, crate::StorageLevel::MemoryOnlySer);
        b.loop_n(3, |b| {
            let e = b
                .var(x)
                .join(b.var(y))
                .values()
                .reduce_by_key(g)
                .sort_by_key();
            b.rebind(x, e);
            b.action(y, crate::ActionKind::Count);
        });
        b.unpersist(x);
        b.action(x, crate::ActionKind::Reduce(g));
        let (p, _) = b.finish();

        let text = Pretty(&p).to_string();
        let reparsed = parse(&text).unwrap();
        let text2 = Pretty(&reparsed).to_string();
        assert_eq!(text, text2, "pretty -> parse -> pretty is a fixed point");
        assert_eq!(p.stmts, reparsed.stmts, "ASTs agree");
    }

    #[test]
    fn reports_line_numbers() {
        let src = "program p {\n  x = source(\"a\")\n  x.explode()\n}";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("explode"));
    }

    #[test]
    fn rejects_unknown_vars() {
        let e = parse("program p { y.count() }").unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_bad_storage_level() {
        let e = parse("program p {\n x = source(\"a\")\n x.persist(TURBO) }").unwrap_err();
        assert!(e.message.contains("unknown storage level"));
    }

    #[test]
    fn comments_and_whitespace_are_ignored() {
        let src = "program p { // header\n  x = source(\"a\") // load\n  x.count()\n}";
        let p = parse(src).unwrap();
        assert_eq!(p.stmts.len(), 2);
    }
}
