//! Static well-formedness checks for programs built without the
//! [`ProgramBuilder`](crate::ProgramBuilder) (e.g. deserialized or
//! hand-assembled IR).

use crate::ast::{Program, RddExpr, Stmt, Transform, VarId};
use std::collections::HashSet;
use std::fmt;

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateProgramError {
    /// A statement or expression references an undeclared variable.
    UnknownVar(VarId),
    /// A variable is used before any binding statement could define it.
    UseBeforeDef(VarId),
    /// A transformation was applied to the wrong number of inputs.
    BadArity {
        /// The transformation's name.
        transform: &'static str,
        /// Inputs it was given.
        got: usize,
        /// Inputs it requires.
        want: usize,
    },
    /// A function id is out of range for the program's function table.
    UnknownFunc(u32),
    /// A sampling fraction is outside `[0, 1]`.
    BadFraction(f64),
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::UnknownVar(v) => write!(f, "unknown variable v{}", v.0),
            ValidateProgramError::UseBeforeDef(v) => {
                write!(f, "variable v{} used before definition", v.0)
            }
            ValidateProgramError::BadArity {
                transform,
                got,
                want,
            } => {
                write!(f, "{transform} takes {want} input(s), got {got}")
            }
            ValidateProgramError::UnknownFunc(id) => write!(f, "unknown function f{id}"),
            ValidateProgramError::BadFraction(x) => {
                write!(f, "sample fraction {x} outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// Check a program's well-formedness.
///
/// # Errors
///
/// Returns the first violation found, in statement order.
pub fn validate(program: &Program) -> Result<(), ValidateProgramError> {
    let mut defined: HashSet<VarId> = HashSet::new();
    validate_block(program, &program.stmts, &mut defined)
}

fn validate_block(
    program: &Program,
    stmts: &[Stmt],
    defined: &mut HashSet<VarId>,
) -> Result<(), ValidateProgramError> {
    for s in stmts {
        match s {
            Stmt::Bind { var, expr } => {
                check_var_declared(program, *var)?;
                validate_expr(program, expr, defined)?;
                defined.insert(*var);
            }
            Stmt::Persist { var, .. }
            | Stmt::Unpersist { var }
            | Stmt::Checkpoint { var }
            | Stmt::Action { var, .. } => {
                check_var_declared(program, *var)?;
                if !defined.contains(var) {
                    return Err(ValidateProgramError::UseBeforeDef(*var));
                }
            }
            Stmt::Loop { body, .. } => validate_block(program, body, defined)?,
        }
    }
    Ok(())
}

fn check_var_declared(program: &Program, var: VarId) -> Result<(), ValidateProgramError> {
    if (var.0 as usize) < program.n_vars() {
        Ok(())
    } else {
        Err(ValidateProgramError::UnknownVar(var))
    }
}

fn validate_expr(
    program: &Program,
    expr: &RddExpr,
    defined: &HashSet<VarId>,
) -> Result<(), ValidateProgramError> {
    match expr {
        RddExpr::Var(v) => {
            check_var_declared(program, *v)?;
            if !defined.contains(v) {
                return Err(ValidateProgramError::UseBeforeDef(*v));
            }
            Ok(())
        }
        RddExpr::Source(_) => Ok(()),
        RddExpr::Apply { transform, inputs } => {
            let want = transform.arity();
            if inputs.len() != want {
                return Err(ValidateProgramError::BadArity {
                    transform: transform.name(),
                    got: inputs.len(),
                    want,
                });
            }
            check_funcs(program, transform)?;
            for i in inputs {
                validate_expr(program, i, defined)?;
            }
            Ok(())
        }
    }
}

fn check_funcs(program: &Program, t: &Transform) -> Result<(), ValidateProgramError> {
    let func = match t {
        Transform::Map(f)
        | Transform::MapValues(f)
        | Transform::FlatMap(f)
        | Transform::Filter(f)
        | Transform::ReduceByKey(f) => Some(*f),
        Transform::Sample { fraction, .. } => {
            if !(0.0..=1.0).contains(fraction) {
                return Err(ValidateProgramError::BadFraction(*fraction));
            }
            None
        }
        _ => None,
    };
    if let Some(f) = func {
        if f.0 >= program.n_funcs {
            return Err(ValidateProgramError::UnknownFunc(f.0));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActionKind, FuncId};
    use crate::ProgramBuilder;

    #[test]
    fn builder_programs_validate() {
        let mut b = ProgramBuilder::new("t");
        let f = b.map_fn(|p| p.clone());
        let src = b.source("s");
        let x = b.bind("x", src.map(f).distinct());
        b.persist(x, crate::StorageLevel::MemoryOnly);
        b.loop_n(3, |b| b.action(x, ActionKind::Count));
        let (p, _) = b.finish();
        validate(&p).unwrap();
    }

    fn raw_program(stmts: Vec<Stmt>, n_vars: usize, n_funcs: u32) -> Program {
        Program {
            name: "raw".into(),
            stmts,
            var_names: (0..n_vars).map(|i| format!("v{i}")).collect(),
            n_funcs,
        }
    }

    #[test]
    fn catches_unknown_var() {
        let p = raw_program(
            vec![Stmt::Action {
                var: VarId(3),
                action: ActionKind::Count,
            }],
            1,
            0,
        );
        assert_eq!(
            validate(&p),
            Err(ValidateProgramError::UnknownVar(VarId(3)))
        );
    }

    #[test]
    fn catches_use_before_def() {
        let p = raw_program(
            vec![
                Stmt::Bind {
                    var: VarId(0),
                    expr: RddExpr::Var(VarId(1)),
                },
                Stmt::Bind {
                    var: VarId(1),
                    expr: RddExpr::Source("s".into()),
                },
            ],
            2,
            0,
        );
        assert_eq!(
            validate(&p),
            Err(ValidateProgramError::UseBeforeDef(VarId(1)))
        );
    }

    #[test]
    fn catches_bad_arity() {
        let p = raw_program(
            vec![Stmt::Bind {
                var: VarId(0),
                expr: RddExpr::Apply {
                    transform: Transform::Join,
                    inputs: vec![RddExpr::Source("a".into())],
                },
            }],
            1,
            0,
        );
        assert!(matches!(
            validate(&p),
            Err(ValidateProgramError::BadArity {
                transform: "join",
                got: 1,
                want: 2
            })
        ));
    }

    #[test]
    fn catches_unknown_func() {
        let p = raw_program(
            vec![Stmt::Bind {
                var: VarId(0),
                expr: RddExpr::Apply {
                    transform: Transform::Map(FuncId(7)),
                    inputs: vec![RddExpr::Source("a".into())],
                },
            }],
            1,
            1,
        );
        assert_eq!(validate(&p), Err(ValidateProgramError::UnknownFunc(7)));
    }

    #[test]
    fn catches_bad_fraction() {
        let p = raw_program(
            vec![Stmt::Bind {
                var: VarId(0),
                expr: RddExpr::Apply {
                    transform: Transform::Sample {
                        fraction: 1.5,
                        seed: 0,
                    },
                    inputs: vec![RddExpr::Source("a".into())],
                },
            }],
            1,
            0,
        );
        assert_eq!(validate(&p), Err(ValidateProgramError::BadFraction(1.5)));
    }
}
