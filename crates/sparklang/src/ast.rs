//! The driver-program IR.
//!
//! Spark driver programs are Scala code; the paper's static analysis reads
//! their def/use structure — which RDD variables are (re)defined or used
//! inside which loops, where `persist` is called and with which storage
//! level, and where actions force materialization. This IR carries exactly
//! that information, plus enough operational content (transformation kinds
//! and user-function ids) for the execution engine to actually run the
//! program.

use std::fmt;

/// An RDD variable declared in the driver program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// A user function (closure) referenced by a transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// Pre-order position of a statement in the program (loop bodies are
/// visited once, in place).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Identity of a loop statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// Spark's ten storage levels (Section 3: each level except `OFF_HEAP` and
/// `DISK_ONLY` is expanded by Panthera into `_DRAM` and `_NVM` sub-levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageLevel {
    /// Deserialized, in the managed heap.
    MemoryOnly,
    /// `MEMORY_ONLY_2`: replicated on two nodes.
    MemoryOnly2,
    /// Serialized bytes in the managed heap.
    MemoryOnlySer,
    /// `MEMORY_ONLY_SER_2`.
    MemoryOnlySer2,
    /// Spill to disk under memory pressure.
    MemoryAndDisk,
    /// `MEMORY_AND_DISK_2`.
    MemoryAndDisk2,
    /// Serialized, spilling to disk under pressure.
    MemoryAndDiskSer,
    /// `MEMORY_AND_DISK_SER_2`.
    MemoryAndDiskSer2,
    /// On disk only — carries no memory tag.
    DiskOnly,
    /// In native (off-heap) memory — translated directly to
    /// `OFF_HEAP_NVM` because natively stored RDDs are rarely used.
    OffHeap,
}

impl StorageLevel {
    /// All ten levels.
    pub const ALL: [StorageLevel; 10] = [
        StorageLevel::MemoryOnly,
        StorageLevel::MemoryOnly2,
        StorageLevel::MemoryOnlySer,
        StorageLevel::MemoryOnlySer2,
        StorageLevel::MemoryAndDisk,
        StorageLevel::MemoryAndDisk2,
        StorageLevel::MemoryAndDiskSer,
        StorageLevel::MemoryAndDiskSer2,
        StorageLevel::DiskOnly,
        StorageLevel::OffHeap,
    ];

    /// Does Panthera expand this level into `_DRAM`/`_NVM` sub-levels?
    pub fn expands_to_tagged(self) -> bool {
        !matches!(self, StorageLevel::DiskOnly | StorageLevel::OffHeap)
    }

    /// Does the level keep data in the managed heap?
    pub fn uses_heap(self) -> bool {
        !matches!(self, StorageLevel::DiskOnly | StorageLevel::OffHeap)
    }

    /// Is the in-memory form serialized (compact byte buffers that must be
    /// deserialized on every read)?
    pub fn is_serialized(self) -> bool {
        matches!(
            self,
            StorageLevel::MemoryOnlySer
                | StorageLevel::MemoryOnlySer2
                | StorageLevel::MemoryAndDiskSer
                | StorageLevel::MemoryAndDiskSer2
        )
    }
}

impl fmt::Display for StorageLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageLevel::MemoryOnly => "MEMORY_ONLY",
            StorageLevel::MemoryOnly2 => "MEMORY_ONLY_2",
            StorageLevel::MemoryOnlySer => "MEMORY_ONLY_SER",
            StorageLevel::MemoryOnlySer2 => "MEMORY_ONLY_SER_2",
            StorageLevel::MemoryAndDisk => "MEMORY_AND_DISK",
            StorageLevel::MemoryAndDisk2 => "MEMORY_AND_DISK_2",
            StorageLevel::MemoryAndDiskSer => "MEMORY_AND_DISK_SER",
            StorageLevel::MemoryAndDiskSer2 => "MEMORY_AND_DISK_SER_2",
            StorageLevel::DiskOnly => "DISK_ONLY",
            StorageLevel::OffHeap => "OFF_HEAP",
        };
        f.write_str(s)
    }
}

/// The memory tag inferred for a persisted RDD (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemoryTag {
    /// Rarely-accessed data: place in NVM.
    Nvm,
    /// Frequently-accessed data: place in DRAM. Wins conflicts.
    Dram,
}

impl fmt::Display for MemoryTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryTag::Dram => f.write_str("DRAM"),
            MemoryTag::Nvm => f.write_str("NVM"),
        }
    }
}

/// An RDD transformation.
///
/// `Distinct`, `GroupByKey`, `ReduceByKey`, and `Join` introduce *wide*
/// dependences (shuffles); everything else is narrow.
#[derive(Debug, Clone, PartialEq)]
pub enum Transform {
    /// One output record per input record.
    Map(FuncId),
    /// Map over the value of each key/value pair, keeping the key (and, in
    /// Spark, sharing the key objects with the parent).
    MapValues(FuncId),
    /// Zero or more output records per input record.
    FlatMap(FuncId),
    /// Keep records satisfying the predicate.
    Filter(FuncId),
    /// Remove duplicates (wide).
    Distinct,
    /// Group values by key (wide).
    GroupByKey,
    /// Reduce values per key with a combiner (wide).
    ReduceByKey(FuncId),
    /// Join two keyed RDDs (wide); produces `(k, (v1, v2))`.
    Join,
    /// Drop keys, keep values.
    Values,
    /// Keep keys, drop values.
    Keys,
    /// Concatenate two RDDs (narrow).
    Union,
    /// Sort records by shuffle key (wide — a range shuffle in Spark).
    SortByKey,
    /// Deterministic Bernoulli sample of the records (narrow).
    Sample {
        /// Probability of keeping each record, in `[0, 1]`.
        fraction: f64,
        /// Sampling seed.
        seed: u64,
    },
}

impl Transform {
    /// Does the transformation require a shuffle (wide dependence)?
    pub fn is_wide(&self) -> bool {
        matches!(
            self,
            Transform::Distinct
                | Transform::GroupByKey
                | Transform::ReduceByKey(_)
                | Transform::Join
                | Transform::SortByKey
        )
    }

    /// Number of input RDDs the transformation takes.
    pub fn arity(&self) -> usize {
        match self {
            Transform::Join | Transform::Union => 2,
            _ => 1,
        }
    }

    /// Short name for display.
    pub fn name(&self) -> &'static str {
        match self {
            Transform::Map(_) => "map",
            Transform::MapValues(_) => "mapValues",
            Transform::FlatMap(_) => "flatMap",
            Transform::Filter(_) => "filter",
            Transform::Distinct => "distinct",
            Transform::GroupByKey => "groupByKey",
            Transform::ReduceByKey(_) => "reduceByKey",
            Transform::Join => "join",
            Transform::Values => "values",
            Transform::Keys => "keys",
            Transform::Union => "union",
            Transform::SortByKey => "sortByKey",
            Transform::Sample { .. } => "sample",
        }
    }
}

/// An RDD-producing expression.
#[derive(Debug, Clone, PartialEq)]
pub enum RddExpr {
    /// Reference to a program variable.
    Var(VarId),
    /// An input source resolved by name at run time (e.g. a dataset
    /// generator standing in for `ctx.textFile(...)`).
    Source(String),
    /// A transformation applied to input expressions.
    Apply {
        /// The transformation.
        transform: Transform,
        /// Input expressions; length must equal `transform.arity()`.
        inputs: Vec<RddExpr>,
    },
}

impl RddExpr {
    /// All variables mentioned anywhere in the expression (uses).
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            RddExpr::Var(v) => out.push(*v),
            RddExpr::Source(_) => {}
            RddExpr::Apply { inputs, .. } => {
                for i in inputs {
                    i.collect_vars(out);
                }
            }
        }
    }
}

/// An action — forces evaluation (and materialization) of an RDD.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionKind {
    /// Count the records.
    Count,
    /// Materialize and retrieve all records to the driver.
    Collect,
    /// Fold all records into one with a combiner.
    Reduce(FuncId),
}

impl ActionKind {
    /// Short name for display.
    pub fn name(&self) -> &'static str {
        match self {
            ActionKind::Count => "count",
            ActionKind::Collect => "collect",
            ActionKind::Reduce(_) => "reduce",
        }
    }
}

/// A driver-program statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var = expr` — a definition (first or repeated) of an RDD variable.
    Bind {
        /// The defined variable.
        var: VarId,
        /// The defining expression.
        expr: RddExpr,
    },
    /// `var.persist(level)` — materializes the variable's current RDD.
    Persist {
        /// The persisted variable.
        var: VarId,
        /// The requested storage level.
        level: StorageLevel,
    },
    /// `var.unpersist()` — releases the variable's current RDD.
    Unpersist {
        /// The released variable.
        var: VarId,
    },
    /// `var.checkpoint()` — marks the variable's current RDD for a
    /// durable NVM snapshot at its next materialization, so recovery can
    /// restore it instead of recomputing its lineage.
    Checkpoint {
        /// The checkpointed variable.
        var: VarId,
    },
    /// `var.action()` — forces evaluation; materializes unpersisted RDDs.
    Action {
        /// The variable the action runs on.
        var: VarId,
        /// Which action.
        action: ActionKind,
    },
    /// `for i in 1..=n { body }` — the computational loops the analysis
    /// keys on.
    Loop {
        /// Number of iterations executed at run time.
        n: u32,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A complete driver program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Program name ("pagerank", "kmeans", ...).
    pub name: String,
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
    /// Human-readable variable names, indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Number of user functions the program references.
    pub n_funcs: u32,
}

impl Program {
    /// The name of a variable.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.0 as usize]
    }

    /// Number of declared variables.
    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_vs_narrow() {
        assert!(Transform::Join.is_wide());
        assert!(Transform::ReduceByKey(FuncId(0)).is_wide());
        assert!(Transform::GroupByKey.is_wide());
        assert!(Transform::Distinct.is_wide());
        assert!(Transform::SortByKey.is_wide());
        assert!(!Transform::Map(FuncId(0)).is_wide());
        assert!(!Transform::Union.is_wide());
        assert!(!Transform::Values.is_wide());
        assert!(!Transform::Sample {
            fraction: 0.5,
            seed: 1
        }
        .is_wide());
    }

    #[test]
    fn arities() {
        assert_eq!(Transform::Join.arity(), 2);
        assert_eq!(Transform::Union.arity(), 2);
        assert_eq!(Transform::Map(FuncId(0)).arity(), 1);
    }

    #[test]
    fn serialized_levels() {
        assert!(StorageLevel::MemoryOnlySer.is_serialized());
        assert!(StorageLevel::MemoryAndDiskSer2.is_serialized());
        assert!(!StorageLevel::MemoryOnly.is_serialized());
        assert!(!StorageLevel::DiskOnly.is_serialized());
    }

    #[test]
    fn storage_level_expansion_rule() {
        // Section 3: every level except OFF_HEAP and DISK_ONLY expands.
        let expanding = StorageLevel::ALL
            .iter()
            .filter(|l| l.expands_to_tagged())
            .count();
        assert_eq!(expanding, 8);
        assert!(!StorageLevel::OffHeap.expands_to_tagged());
        assert!(!StorageLevel::DiskOnly.expands_to_tagged());
    }

    #[test]
    fn expr_vars_are_collected_in_order() {
        let e = RddExpr::Apply {
            transform: Transform::Join,
            inputs: vec![
                RddExpr::Var(VarId(0)),
                RddExpr::Apply {
                    transform: Transform::Values,
                    inputs: vec![RddExpr::Var(VarId(2))],
                },
            ],
        };
        assert_eq!(e.vars(), vec![VarId(0), VarId(2)]);
        assert!(RddExpr::Source("x".into()).vars().is_empty());
    }

    #[test]
    fn tag_ordering_prefers_dram() {
        assert!(MemoryTag::Dram > MemoryTag::Nvm);
    }
}
