//! Program traversal with pre-order statement numbering and loop context —
//! the scaffolding the static analysis (and the interpreter) walk on.

use crate::ast::{LoopId, Program, Stmt, StmtId};

/// Callbacks invoked during a program walk.
///
/// Statements are numbered in pre-order: a loop statement receives its id
/// before its body, so a loop's extent is `[loop_id, last_body_stmt_id]`.
pub trait Visitor {
    /// A non-loop statement at position `id`, inside the loops `loops`
    /// (outermost first).
    fn stmt(&mut self, id: StmtId, stmt: &Stmt, loops: &[LoopId]);

    /// Entering a loop (its own statement position is `id`).
    fn enter_loop(&mut self, _id: StmtId, _loop_id: LoopId, _n: u32) {}

    /// Leaving a loop; `last` is the position of its final statement.
    fn exit_loop(&mut self, _loop_id: LoopId, _last: StmtId) {}
}

/// Walk `program`, driving `visitor`. Returns the total statement count.
pub fn walk(program: &Program, visitor: &mut impl Visitor) -> u32 {
    let mut next = 0u32;
    let mut next_loop = 0u32;
    let mut loops = Vec::new();
    walk_block(
        &program.stmts,
        visitor,
        &mut next,
        &mut next_loop,
        &mut loops,
    );
    next
}

fn walk_block(
    stmts: &[Stmt],
    visitor: &mut impl Visitor,
    next: &mut u32,
    next_loop: &mut u32,
    loops: &mut Vec<LoopId>,
) {
    for s in stmts {
        let id = StmtId(*next);
        *next += 1;
        match s {
            Stmt::Loop { n, body } => {
                let loop_id = LoopId(*next_loop);
                *next_loop += 1;
                visitor.enter_loop(id, loop_id, *n);
                loops.push(loop_id);
                walk_block(body, visitor, next, next_loop, loops);
                loops.pop();
                visitor.exit_loop(loop_id, StmtId(next.saturating_sub(1)));
            }
            other => visitor.stmt(id, other, loops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ActionKind, RddExpr, VarId};

    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl Visitor for Recorder {
        fn stmt(&mut self, id: StmtId, stmt: &Stmt, loops: &[LoopId]) {
            let kind = match stmt {
                Stmt::Bind { .. } => "bind",
                Stmt::Persist { .. } => "persist",
                Stmt::Unpersist { .. } => "unpersist",
                Stmt::Checkpoint { .. } => "checkpoint",
                Stmt::Action { .. } => "action",
                Stmt::Loop { .. } => unreachable!(),
            };
            self.events
                .push(format!("{kind}@{} in{:?}", id.0, loops.len()));
        }

        fn enter_loop(&mut self, id: StmtId, loop_id: LoopId, n: u32) {
            self.events
                .push(format!("loop{}@{} n={n}", loop_id.0, id.0));
        }

        fn exit_loop(&mut self, loop_id: LoopId, last: StmtId) {
            self.events
                .push(format!("end{} last={}", loop_id.0, last.0));
        }
    }

    #[test]
    fn preorder_numbering() {
        let program = Program {
            name: "t".into(),
            stmts: vec![
                Stmt::Bind {
                    var: VarId(0),
                    expr: RddExpr::Source("s".into()),
                },
                Stmt::Loop {
                    n: 2,
                    body: vec![
                        Stmt::Action {
                            var: VarId(0),
                            action: ActionKind::Count,
                        },
                        Stmt::Loop {
                            n: 3,
                            body: vec![Stmt::Action {
                                var: VarId(0),
                                action: ActionKind::Count,
                            }],
                        },
                    ],
                },
                Stmt::Action {
                    var: VarId(0),
                    action: ActionKind::Count,
                },
            ],
            var_names: vec!["x".into()],
            n_funcs: 0,
        };
        let mut r = Recorder::default();
        let count = walk(&program, &mut r);
        assert_eq!(count, 6, "six statements including both loop headers");
        assert_eq!(
            r.events,
            vec![
                "bind@0 in0",
                "loop0@1 n=2",
                "action@2 in1",
                "loop1@3 n=3",
                "action@4 in2",
                "end1 last=4",
                "end0 last=4",
                "action@5 in0",
            ]
        );
    }
}
