//! The major (full-heap) collection: mark, dynamically re-assess RDD
//! placement, compact, sweep (paper Section 4.2.2, "Major GC").
//!
//! Compaction never crosses the DRAM/NVM boundary: each old space compacts
//! within itself. Before compacting, the collector re-assesses every RDD
//! array against its access frequency since the last major GC: hot arrays
//! in NVM migrate to the DRAM space, cold arrays in DRAM migrate to NVM,
//! and every object reachable from a migrating array moves with it (with
//! conflicts resolved DRAM-first by the `MEMORY_BITS` merge). Frequencies
//! reset at the end of the collection.

use crate::coordinator::{GcCoordinator, TRACE_CPU_NS_PER_OBJ};
use hybridmem::Phase;
use mheap::{Heap, Invariant, ObjId, OldSpaceId, RootSet, VerifyError, VerifyPoint};
use std::collections::{HashMap, HashSet, VecDeque};

impl GcCoordinator {
    /// Run one major collection.
    pub fn major_gc(&mut self, heap: &mut Heap, roots: &RootSet) {
        let prev = heap.mem_mut().enter_phase(Phase::MajorGc);
        let pause_start = heap.mem().clock().now_ns();
        heap.observer().emit(pause_start, &obs::Event::MajorGcStart);
        self.run_verify(heap, roots, VerifyPoint::BeforeMajor);
        self.stats.major_count += 1;
        heap.mem_mut().compute(crate::coordinator::MAJOR_BASE_NS);

        let migrated_before = self.stats.rdds_migrated;
        let freed_before = self.stats.old_freed;

        // --- mark ---------------------------------------------------------
        let marked = self.mark(heap, roots);

        // Footprint conservation (verifier invariant d): the marked bytes
        // entering compaction+migration must equal the old-generation bytes
        // that come out — migration moves bytes, it never creates or
        // destroys them.
        let live_old_bytes_in: u64 = if self.config.verify {
            heap.old_space_ids()
                .iter()
                .flat_map(|s| heap.old(*s).objects())
                .filter(|id| marked.contains(id))
                .map(|id| heap.obj(*id).size)
                .sum()
        } else {
            0
        };

        // --- per-space live lists ------------------------------------------
        let mut live: HashMap<OldSpaceId, Vec<ObjId>> = HashMap::new();
        let mut dead: Vec<ObjId> = Vec::new();
        for space in heap.old_space_ids() {
            let mut l = Vec::new();
            for id in heap.old(space).objects() {
                if marked.contains(id) {
                    l.push(*id);
                } else {
                    dead.push(*id);
                }
            }
            live.insert(space, l);
        }

        // --- dynamic re-assessment (Panthera) -------------------------------
        let mut migrate: HashMap<ObjId, OldSpaceId> = HashMap::new();
        if self.policy.dynamic_migration() {
            migrate = self.plan_migrations(heap, &live);
        }

        // --- compact each space (staying objects only) ----------------------
        let mut movers: Vec<(ObjId, OldSpaceId, OldSpaceId)> = Vec::new();
        for space in heap.old_space_ids() {
            let mut staying = Vec::new();
            for id in live.remove(&space).unwrap_or_default() {
                match migrate.get(&id) {
                    Some(dest) if *dest != space => movers.push((id, space, *dest)),
                    _ => staying.push(id),
                }
            }
            heap.compact_old(space, staying);
        }

        // --- apply migrations after compaction ------------------------------
        let mut migrated_arrays = 0u64;
        for (id, src, dest) in movers {
            let (is_array, rdd, bytes, from_dev) = {
                let o = heap.obj(id);
                (
                    o.kind.is_array(),
                    o.kind.rdd_id(),
                    o.size,
                    heap.device_of(o.addr),
                )
            };
            if heap.move_to_old(id, dest).is_ok() {
                if is_array {
                    migrated_arrays += 1;
                    let observer = heap.observer();
                    if observer.enabled() {
                        observer.emit(
                            heap.mem().clock().now_ns(),
                            &obs::Event::Migration {
                                rdd: rdd.unwrap_or(u32::MAX),
                                from: from_dev.into(),
                                to: heap.device_of(heap.obj(id).addr).into(),
                                bytes,
                            },
                        );
                    }
                }
            } else {
                // The destination is full. The object was excluded from its
                // source space's compaction staying-list, so dropping it
                // here would orphan it from every resident list — invisible
                // to the sweep and re-dirty walks while still holding a
                // slab slot. Re-append it to its (just-compacted) source
                // space, which is guaranteed to have room: compaction freed
                // at least this object's own bytes.
                heap.move_to_old(id, src)
                    .expect("compacted source space has room for a failed migration");
                self.stats.migration_fallbacks += 1;
            }
        }
        self.stats.rdds_migrated += migrated_arrays;

        // --- sweep -----------------------------------------------------------
        for id in dead {
            heap.free(id);
            self.stats.old_freed += 1;
        }

        if self.config.verify {
            let out: u64 = heap
                .old_space_ids()
                .iter()
                .map(|s| heap.old(*s).used())
                .sum();
            if out != live_old_bytes_in {
                Self::verify_fail(
                    heap,
                    VerifyError {
                        point: VerifyPoint::AfterMajor,
                        invariant: Invariant::Accounting,
                        object: None,
                        space: None,
                        detail: format!(
                            "footprint not conserved across compaction: \
                             {live_old_bytes_in} live bytes in, {out} bytes out"
                        ),
                    },
                );
            }
        }

        // --- epilogue ---------------------------------------------------------
        for space in heap.old_space_ids() {
            heap.card_table_mut(space).clear_all();
        }
        // Re-dirty cards for old objects that reference the young
        // generation, so the next minor GC still sees them. Each
        // young-pointing *slot's* card is dirtied, not the header's: a
        // multi-card RDD array's young reference can sit many cards past
        // the header, and a header-only mark would let the next minor GC's
        // card scan miss it entirely.
        for space in heap.old_space_ids() {
            let ids: Vec<ObjId> = heap.old(space).objects().to_vec();
            for id in ids {
                let young_slots: Vec<hybridmem::Addr> = {
                    let o = heap.obj(id);
                    o.refs
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| heap.is_live(**t) && heap.obj(**t).in_young())
                        .map(|(i, _)| o.slot_addr(i))
                        .collect()
                };
                for slot in young_slots {
                    heap.card_table_mut(space).mark_dirty(slot);
                }
            }
        }
        for id in marked {
            if heap.is_live(id) {
                heap.obj_mut(id).marked = false;
            }
        }
        self.freq.reset();
        self.run_verify(heap, roots, VerifyPoint::AfterMajor);
        let pause_ns = heap.mem().clock().now_ns() - pause_start;
        self.major_pauses.record(pause_ns);
        let migrated = self.stats.rdds_migrated - migrated_before;
        let freed = self.stats.old_freed - freed_before;
        self.events.push(crate::stats::GcEvent {
            kind: crate::stats::GcKind::Major,
            start_ns: pause_start,
            pause_ns,
            moved: migrated,
            freed,
        });
        heap.observer().emit(
            heap.mem().clock().now_ns(),
            &obs::Event::MajorGcEnd {
                pause_ns,
                migrated,
                freed,
            },
        );
        heap.mem_mut().enter_phase(prev);
    }

    /// Full-heap mark from the roots; charges a read per object visited.
    fn mark(&mut self, heap: &mut Heap, roots: &RootSet) -> HashSet<ObjId> {
        let mut visited: HashSet<ObjId> = HashSet::new();
        let mut queue: VecDeque<ObjId> = roots.iter().filter(|r| heap.is_live(*r)).collect();
        while let Some(id) = queue.pop_front() {
            if !visited.insert(id) {
                continue;
            }
            heap.obj_mut(id).marked = true;
            heap.read_object(id);
            heap.mem_mut().compute(TRACE_CPU_NS_PER_OBJ);
            let refs = heap.obj(id).refs.clone();
            for t in refs {
                if heap.is_live(t) && !visited.contains(&t) {
                    queue.push_back(t);
                }
            }
        }
        visited
    }

    /// Decide which live objects switch old spaces, keyed by the RDD
    /// arrays' access frequencies — or, when an online re-tagging policy
    /// pinned an override for the RDD, by the override alone. Objects
    /// reachable from a migrating array migrate with it; DRAM wins
    /// conflicts.
    fn plan_migrations(
        &mut self,
        heap: &Heap,
        live: &HashMap<OldSpaceId, Vec<ObjId>>,
    ) -> HashMap<ObjId, OldSpaceId> {
        let (Some(dram), Some(nvm)) = (heap.old_dram(), heap.old_nvm()) else {
            return HashMap::new();
        };
        let mut plan: HashMap<ObjId, OldSpaceId> = HashMap::new();
        // DRAM decisions are applied second so they overwrite NVM ones
        // (MEMORY_BITS conflict priority).
        let mut to_nvm: Vec<ObjId> = Vec::new();
        let mut to_dram: Vec<ObjId> = Vec::new();
        // Iterate spaces in id order — `live` is a hash map.
        let mut spaces: Vec<_> = live.keys().copied().collect();
        spaces.sort_unstable();
        for space in spaces {
            let (space, ids) = (&space, &live[&space]);
            for id in ids {
                let o = heap.obj(*id);
                let Some(rdd_id) = o.kind.rdd_id() else {
                    continue;
                };
                if !o.kind.is_array() {
                    continue;
                }
                if let Some(tag) = self.tag_overrides.get(&rdd_id) {
                    match tag {
                        mheap::MemTag::Dram if *space == nvm => to_dram.push(*id),
                        mheap::MemTag::Nvm if *space == dram => to_nvm.push(*id),
                        _ => {}
                    }
                    continue;
                }
                let calls = self.freq.calls(rdd_id);
                if calls >= self.config.hot_call_threshold && *space == nvm {
                    to_dram.push(*id);
                } else if calls < self.config.cold_call_threshold && *space == dram {
                    to_nvm.push(*id);
                }
            }
        }
        for id in to_nvm {
            for m in reachable_in_old(heap, id) {
                plan.insert(m, nvm);
            }
        }
        for id in to_dram {
            for m in reachable_in_old(heap, id) {
                plan.insert(m, dram);
            }
        }
        plan
    }
}

/// The old-generation objects reachable from `root` (inclusive).
fn reachable_in_old(heap: &Heap, root: ObjId) -> Vec<ObjId> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut queue = VecDeque::from([root]);
    while let Some(id) = queue.pop_front() {
        if !seen.insert(id) || !heap.is_live(id) {
            continue;
        }
        let o = heap.obj(id);
        if o.space.is_young() {
            continue;
        }
        out.push(id);
        for t in &o.refs {
            queue.push_back(*t);
        }
    }
    out
}
