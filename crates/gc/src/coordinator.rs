//! The collection coordinator: triggers, allocation entry points, and the
//! shared state of the minor and major collectors.

use crate::freq::AccessFreqTable;
use crate::policy::PlacementPolicy;
use crate::stats::{GcEvent, GcStats, PauseStats};
use mheap::{
    Heap, HeapError, MemTag, ObjId, ObjKind, OldSpaceId, Payload, RootSet, VerifyError, VerifyPoint,
};
use std::collections::HashMap;

/// CPU cost per object processed during tracing (queue and mark
/// bookkeeping), charged on top of the memory traffic.
pub(crate) const TRACE_CPU_NS_PER_OBJ: f64 = 12.0;
/// CPU cost of the instrumented JNI call that bumps an RDD's frequency
/// counter (Section 5.5 reports the total monitoring overhead is < 1%).
const MONITOR_CALL_NS: f64 = 400.0;
/// Fixed safepoint + task-setup cost of a minor collection.
pub(crate) const MINOR_BASE_NS: f64 = 20_000.0;
/// Fixed safepoint + task-setup cost of a major collection.
pub(crate) const MAJOR_BASE_NS: f64 = 100_000.0;

/// Tunables of the collection heuristics.
#[derive(Debug, Clone)]
pub struct GcConfig {
    /// Run a major collection when total old-generation occupancy exceeds
    /// this fraction.
    pub major_occupancy_trigger: f64,
    /// An RDD with at least this many calls since the last major GC is hot
    /// and belongs in DRAM.
    pub hot_call_threshold: u64,
    /// An RDD with fewer than this many calls is cold and belongs in NVM.
    pub cold_call_threshold: u64,
    /// Kingsguard-Writes: migrate old objects with at least this many
    /// observed writes to the DRAM space.
    pub kw_write_threshold: u64,
    /// Objects at least this large count as "large arrays" for the
    /// shared-card pathology.
    pub large_array_bytes: u64,
    /// Verify every heap invariant at collection entry and exit
    /// (HotSpot's `VerifyBeforeGC`/`VerifyAfterGC`). Defaults to the
    /// `PANTHERA_VERIFY` environment variable; a violation panics after
    /// emitting [`obs::Event::VerifyFailure`].
    pub verify: bool,
}

/// True when the `PANTHERA_VERIFY` environment variable force-enables
/// heap verification (set and not `"0"`).
pub fn verify_env_enabled() -> bool {
    std::env::var("PANTHERA_VERIFY").is_ok_and(|v| v != "0")
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            major_occupancy_trigger: 0.88,
            hot_call_threshold: 4,
            cold_call_threshold: 1,
            kw_write_threshold: 4,
            large_array_bytes: 2 * mheap::CARD_BYTES,
            verify: verify_env_enabled(),
        }
    }
}

/// Orchestrates collections over a [`Heap`] according to a
/// [`PlacementPolicy`].
#[derive(Debug)]
pub struct GcCoordinator {
    pub(crate) policy: Box<dyn PlacementPolicy>,
    pub(crate) config: GcConfig,
    pub(crate) freq: AccessFreqTable,
    pub(crate) stats: GcStats,
    pub(crate) minor_pauses: PauseStats,
    pub(crate) major_pauses: PauseStats,
    pub(crate) events: Vec<GcEvent>,
    /// Per-RDD placement overrides from an online re-tagging policy.
    /// Unlike the frequency table, overrides persist across collections —
    /// they stand until the policy changes its mind.
    pub(crate) tag_overrides: HashMap<u32, MemTag>,
}

impl GcCoordinator {
    /// A coordinator driving the given policy with default heuristics.
    pub fn new(policy: Box<dyn PlacementPolicy>) -> Self {
        Self::with_config(policy, GcConfig::default())
    }

    /// A coordinator with explicit heuristics.
    pub fn with_config(policy: Box<dyn PlacementPolicy>, config: GcConfig) -> Self {
        GcCoordinator {
            policy,
            config,
            freq: AccessFreqTable::new(),
            stats: GcStats::default(),
            minor_pauses: PauseStats::default(),
            major_pauses: PauseStats::default(),
            events: Vec::new(),
            tag_overrides: HashMap::new(),
        }
    }

    /// The active placement policy.
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// Collection statistics so far.
    pub fn stats(&self) -> &GcStats {
        &self.stats
    }

    /// The RDD access-frequency table.
    pub fn freq(&self) -> &AccessFreqTable {
        &self.freq
    }

    /// Individual minor-pause durations.
    pub fn minor_pauses(&self) -> &PauseStats {
        &self.minor_pauses
    }

    /// Individual major-pause durations.
    pub fn major_pauses(&self) -> &PauseStats {
        &self.major_pauses
    }

    /// The chronological log of every collection this coordinator ran.
    pub fn events(&self) -> &[GcEvent] {
        &self.events
    }

    /// Run a heap verification pass if verification is enabled.
    ///
    /// # Panics
    ///
    /// Panics on the first invariant violation, after emitting
    /// [`obs::Event::VerifyFailure`] so the trace captures it.
    pub(crate) fn run_verify(&self, heap: &Heap, roots: &RootSet, point: VerifyPoint) {
        if !self.config.verify {
            return;
        }
        if let Err(e) = heap.verify(roots, point) {
            Self::verify_fail(heap, e);
        }
    }

    /// Report a verification failure: trace event, then panic. Never
    /// returns.
    pub(crate) fn verify_fail(heap: &Heap, e: VerifyError) -> ! {
        let observer = heap.observer();
        if observer.enabled() {
            observer.emit(
                heap.mem().clock().now_ns(),
                &obs::Event::VerifyFailure {
                    point: e.point.label().to_string(),
                    invariant: e.invariant.label().to_string(),
                    detail: e.to_string(),
                },
            );
        }
        panic!("{e}");
    }

    /// Record a monitored method call on an RDD (instrumented call sites,
    /// Section 4.2.2), charging the JNI overhead.
    ///
    /// Also exports the observation as [`obs::Event::RddCall`]: the
    /// internal frequency table resets at every major collection, so an
    /// online policy that needs batch-boundary deltas accumulates these
    /// events instead (observe-never-charge — the emission itself costs
    /// nothing; the monitoring overhead charged here is the call's).
    pub fn record_rdd_call(&mut self, heap: &mut Heap, rdd_id: u32) {
        self.freq.record_call(rdd_id);
        let observer = heap.observer();
        if observer.enabled() {
            observer.emit(
                heap.mem().clock().now_ns(),
                &obs::Event::RddCall { rdd: rdd_id },
            );
        }
        heap.mem_mut().compute(MONITOR_CALL_NS);
    }

    /// Pin an RDD's placement to `tag`, overriding both the static tag
    /// and the hot/cold thresholds at the next dynamic re-assessment
    /// (online re-tagging; the override stands until cleared).
    ///
    /// Passing [`MemTag::None`] is equivalent to clearing the override.
    pub fn set_tag_override(&mut self, rdd_id: u32, tag: MemTag) {
        match tag {
            MemTag::None => {
                self.tag_overrides.remove(&rdd_id);
            }
            t => {
                self.tag_overrides.insert(rdd_id, t);
            }
        }
    }

    /// Drop a per-RDD placement override, returning re-assessment of that
    /// RDD to the frequency thresholds.
    pub fn clear_tag_override(&mut self, rdd_id: u32) {
        self.tag_overrides.remove(&rdd_id);
    }

    /// The placement override for an RDD, if one is pinned.
    pub fn tag_override(&self, rdd_id: u32) -> Option<MemTag> {
        self.tag_overrides.get(&rdd_id).copied()
    }

    /// Allocate a young object, collecting as needed.
    ///
    /// Objects too large for eden even after a minor collection are
    /// pretenured into the policy's promotion space.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted even after a major collection.
    pub fn alloc_young(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        kind: ObjKind,
        tag: MemTag,
        refs: Vec<ObjId>,
        payload: Payload,
    ) -> ObjId {
        match heap.alloc_young(kind, tag, refs.clone(), payload.clone()) {
            Ok(id) => return id,
            Err(HeapError::EdenFull { .. }) => {}
            Err(e) => panic!("unexpected young allocation failure: {e}"),
        }
        self.minor_gc(heap, roots);
        self.maybe_major(heap, roots);
        match heap.alloc_young(kind, tag, refs.clone(), payload.clone()) {
            Ok(id) => id,
            Err(HeapError::EdenFull { .. }) => {
                // Humongous object: pretenure.
                let space = self.policy.promotion_space(heap, tag);
                self.alloc_old_with_fallback(heap, roots, space, kind, tag, refs, payload)
            }
            Err(e) => panic!("unexpected young allocation failure: {e}"),
        }
    }

    /// Allocate a materialized RDD's backbone array per the policy
    /// (Table 1), collecting as needed.
    ///
    /// # Panics
    ///
    /// Panics if no space can hold the array even after a major collection.
    pub fn alloc_rdd_array(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        rdd_id: u32,
        slots: usize,
        tag: MemTag,
    ) -> ObjId {
        match self.policy.array_space(heap, tag) {
            Some(space) => {
                if let Ok(id) = heap.alloc_array_old(space, rdd_id, slots, tag) {
                    return id;
                }
                // Preferred space is full (e.g. the small DRAM part): fall
                // back to the other old spaces — the paper's "once DRAM is
                // exhausted, the remaining RDDs are placed in NVM".
                for alt in heap.old_space_ids() {
                    if alt != space {
                        if let Ok(id) = heap.alloc_array_old(alt, rdd_id, slots, tag) {
                            self.stats.promotion_fallbacks += 1;
                            return id;
                        }
                    }
                }
                // Everything is full: reclaim and retry once.
                self.major_gc(heap, roots);
                for s in std::iter::once(space)
                    .chain(heap.old_space_ids().into_iter().filter(|s| *s != space))
                {
                    if let Ok(id) = heap.alloc_array_old(s, rdd_id, slots, tag) {
                        return id;
                    }
                }
                panic!("out of memory: no old space can hold RDD {rdd_id}'s array");
            }
            None => {
                // Untagged arrays start in the young generation like any
                // other object.
                if let Ok(id) = heap.alloc_array_young(rdd_id, slots) {
                    return id;
                }
                self.minor_gc(heap, roots);
                self.maybe_major(heap, roots);
                if let Ok(id) = heap.alloc_array_young(rdd_id, slots) {
                    return id;
                }
                let space = self.policy.promotion_space(heap, MemTag::None);
                for s in std::iter::once(space)
                    .chain(heap.old_space_ids().into_iter().filter(|s| *s != space))
                {
                    if let Ok(id) = heap.alloc_array_old(s, rdd_id, slots, MemTag::None) {
                        return id;
                    }
                }
                panic!("out of memory: no space can hold RDD {rdd_id}'s array");
            }
        }
    }

    /// Run a major collection if old-generation occupancy crossed the
    /// trigger — either overall or in the dominant (largest) old space,
    /// whose exhaustion is what actually blocks promotion.
    pub fn maybe_major(&mut self, heap: &mut Heap, roots: &RootSet) {
        let spaces = heap.old_space_ids();
        let (used, cap): (u64, u64) = spaces
            .iter()
            .map(|s| (heap.old(*s).used(), heap.old(*s).capacity()))
            .fold((0, 0), |(u, c), (u2, c2)| (u + u2, c + c2));
        let total_occ = if cap > 0 {
            used as f64 / cap as f64
        } else {
            0.0
        };
        let biggest_occ = spaces
            .iter()
            .max_by_key(|s| heap.old(**s).capacity())
            .map(|s| heap.old(*s).occupancy())
            .unwrap_or(0.0);
        if total_occ.max(biggest_occ) > self.config.major_occupancy_trigger {
            self.major_gc(heap, roots);
        }
    }

    /// Promote one object, falling back to the other old spaces when the
    /// preferred one is full (the paper: when the DRAM space fills up,
    /// everything goes to NVM regardless of tags).
    pub(crate) fn promote(&mut self, heap: &mut Heap, id: ObjId, preferred: OldSpaceId) {
        if heap.move_to_old(id, preferred).is_ok() {
            Self::note_promotion(heap, id);
            return;
        }
        self.stats.promotion_fallbacks += 1;
        for alt in heap.old_space_ids() {
            if alt != preferred && heap.move_to_old(id, alt).is_ok() {
                Self::note_promotion(heap, id);
                return;
            }
        }
        panic!("out of memory: promotion failed in every old space");
    }

    /// Emit an [`obs::Event::Promotion`] for a just-promoted object
    /// (observes only; the move itself already charged the traffic).
    fn note_promotion(heap: &Heap, id: ObjId) {
        let observer = heap.observer();
        if observer.enabled() {
            let o = heap.obj(id);
            observer.emit(
                heap.mem().clock().now_ns(),
                &obs::Event::Promotion {
                    bytes: o.size,
                    to: heap.device_of(o.addr).into(),
                },
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn alloc_old_with_fallback(
        &mut self,
        heap: &mut Heap,
        roots: &RootSet,
        space: OldSpaceId,
        kind: ObjKind,
        tag: MemTag,
        refs: Vec<ObjId>,
        payload: Payload,
    ) -> ObjId {
        if let Ok(id) = heap.alloc_old(space, kind, tag, refs.clone(), payload.clone()) {
            return id;
        }
        self.major_gc(heap, roots);
        for s in
            std::iter::once(space).chain(heap.old_space_ids().into_iter().filter(|s| *s != space))
        {
            if let Ok(id) = heap.alloc_old(s, kind, tag, refs.clone(), payload.clone()) {
                return id;
            }
        }
        panic!("out of memory: old allocation failed in every space");
    }
}
