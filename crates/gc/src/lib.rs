#![deny(missing_docs)]

//! Garbage collectors for the Panthera reproduction.
//!
//! One generational collector implementation, parameterized by a
//! [`PlacementPolicy`], reproduces the paper's collector and all of its
//! baselines:
//!
//! | Policy | Old-gen layout | Models |
//! |--------|----------------|--------|
//! | [`PantheraPolicy`] | split DRAM + NVM | the paper's contribution (Section 4) |
//! | [`UnifiedPolicy`] + `Unified(Dram)` | one DRAM space | the DRAM-only baseline |
//! | [`UnifiedPolicy`] + `Interleaved` | chunk-interleaved | the *unmanaged* baseline (Section 5.2) |
//! | [`UnifiedPolicy`] + `Unified(Nvm)` | one NVM space | Kingsguard-Nursery |
//! | [`WriteRationingPolicy`] | split DRAM + NVM | Kingsguard-Writes |
//!
//! The minor collection is a scavenge with split DRAM-to-young /
//! NVM-to-young card-scan tasks, `MEMORY_BITS` tag propagation, and eager
//! promotion; the major collection is a mark-compact that respects the
//! DRAM/NVM boundary and performs frequency-driven dynamic migration.
//!
//! ```
//! use gc::{GcCoordinator, PantheraPolicy};
//! use mheap::{Heap, HeapConfig, MemTag, ObjKind, Payload, RootSet};
//! use hybridmem::MemorySystemConfig;
//!
//! let mut heap = Heap::new(
//!     HeapConfig::panthera(600_000, 1.0 / 3.0),
//!     MemorySystemConfig::with_capacities(200_000, 400_000),
//! ).unwrap();
//! let mut gc = GcCoordinator::new(Box::new(PantheraPolicy::default()));
//! let mut roots = RootSet::new();
//!
//! let obj = gc.alloc_young(
//!     &mut heap, &roots, ObjKind::Tuple, MemTag::Dram, vec![], Payload::Long(1),
//! );
//! roots.push(obj);
//! gc.minor_gc(&mut heap, &roots);
//! // Eager promotion moved the tagged object straight to old-gen DRAM.
//! assert_eq!(heap.obj(obj).space, mheap::SpaceId::Old(heap.old_dram().unwrap()));
//! ```

mod coordinator;
mod freq;
mod major;
mod minor;
mod policy;
mod stats;

pub use coordinator::{verify_env_enabled, GcConfig, GcCoordinator};
pub use freq::AccessFreqTable;
pub use minor::card_population;
pub use policy::{PantheraPolicy, PlacementPolicy, UnifiedPolicy, WriteRationingPolicy};
pub use stats::{GcEvent, GcKind, GcStats, PauseStats};
