//! The minor (young-generation) collection — a semantics-aware parallel
//! scavenge (paper Section 4.2.2).
//!
//! Tasks mirror the paper's decomposition of Parallel Scavenge:
//!
//! * **root-task** — traces from the root set; RDD top objects whose
//!   `MEMORY_BITS` were set by `rdd_alloc` are recognized here;
//! * **DRAM-to-young-task / NVM-to-young-task** — the split old-to-young
//!   scan walks each old space's dirty cards, finds references into the
//!   young generation, and *propagates the source object's tag* to the
//!   young target;
//! * **steal-task** — work stealing is modelled by the 16-thread access
//!   profile used to charge all GC traffic.
//!
//! Tagged survivors are *eagerly promoted* straight into the old space
//! their `MEMORY_BITS` name; untagged survivors age through the survivor
//! spaces as in the original collector. When the DRAM old space is full,
//! promotion falls back to NVM regardless of tags.

use crate::coordinator::{GcCoordinator, TRACE_CPU_NS_PER_OBJ};
use hybridmem::Phase;
use mheap::{Heap, MemTag, ObjId, OldSpaceId, RootSet, SpaceId, CARD_BYTES};
use std::collections::{HashMap, HashSet, VecDeque};

/// A card scanned this cycle, to be re-examined after evacuation.
struct ScannedCard {
    space: OldSpaceId,
    card: usize,
    objects: Vec<ObjId>,
}

impl GcCoordinator {
    /// Run one minor collection.
    pub fn minor_gc(&mut self, heap: &mut Heap, roots: &RootSet) {
        let prev = heap.mem_mut().enter_phase(Phase::MinorGc);
        let pause_start = heap.mem().clock().now_ns();
        heap.observer().emit(pause_start, &obs::Event::MinorGcStart);
        self.run_verify(heap, roots, mheap::VerifyPoint::BeforeMinor);
        self.stats.minor_count += 1;
        heap.mem_mut().compute(crate::coordinator::MINOR_BASE_NS);

        let moved_before = self.stats.total_promotions() + self.stats.survivor_copies;
        let freed_before = self.stats.young_freed;
        let cards_before = self.stats.cards_scanned;
        let card_bytes_before = self.stats.card_scan_bytes;
        let stuck_before = self.stats.stuck_card_rescans;

        // Snapshot the young population before anything moves.
        let young: Vec<ObjId> = heap
            .eden()
            .objects()
            .iter()
            .chain(heap.from_space().objects().iter())
            .copied()
            .collect();

        let mut queue: VecDeque<(ObjId, MemTag)> = VecDeque::new();

        // --- DRAM-to-young-task and NVM-to-young-task ------------------
        let scanned = self.scan_dirty_cards(heap, &mut queue);
        if heap.observer().enabled() && self.stats.cards_scanned > cards_before {
            heap.observer().emit(
                heap.mem().clock().now_ns(),
                &obs::Event::CardScan {
                    cards: self.stats.cards_scanned - cards_before,
                    bytes: self.stats.card_scan_bytes - card_bytes_before,
                    stuck: self.stats.stuck_card_rescans - stuck_before,
                },
            );
        }

        // --- root-task --------------------------------------------------
        for r in roots.iter() {
            if !heap.is_live(r) {
                continue;
            }
            let o = heap.obj(r);
            if o.space.is_young() {
                // A root object propagates its own MEMORY_BITS (set by
                // rdd_alloc on RDD top objects) to itself.
                queue.push_back((r, o.tag));
            }
        }

        // --- transitive trace with tag propagation ----------------------
        let propagate = self.policy.propagate_tags();
        let mut visited: HashSet<ObjId> = HashSet::new();
        while let Some((id, incoming)) = queue.pop_front() {
            let o = heap.obj(id);
            if !o.space.is_young() {
                continue;
            }
            let old_tag = o.tag;
            let new_tag = if propagate {
                old_tag.merge(incoming)
            } else {
                old_tag
            };
            let first = visited.insert(id);
            if first {
                heap.obj_mut(id).tag = new_tag;
                heap.read_object(id);
                heap.mem_mut().compute(TRACE_CPU_NS_PER_OBJ);
                let refs = heap.obj(id).refs.clone();
                for t in refs {
                    if heap.is_live(t) && heap.obj(t).space.is_young() {
                        queue.push_back((t, new_tag));
                    }
                }
            } else if new_tag != old_tag {
                // Tag upgraded after the first visit: re-propagate. Tags
                // only increase (none < NVM < DRAM), so this terminates.
                heap.obj_mut(id).tag = new_tag;
                let refs = heap.obj(id).refs.clone();
                for t in refs {
                    if heap.is_live(t) && heap.obj(t).space.is_young() {
                        queue.push_back((t, new_tag));
                    }
                }
            }
        }

        // --- evacuation ---------------------------------------------------
        let mut survivors: Vec<ObjId> = young
            .iter()
            .copied()
            .filter(|id| visited.contains(id))
            .collect();
        survivors.sort_by_key(|id| heap.obj(*id).addr);
        let tenure = heap.config().tenure_threshold;
        let eager_on = self.policy.eager_promotion();
        for id in survivors {
            let (tag, age) = {
                let o = heap.obj(id);
                (o.tag, o.age)
            };
            let eager = eager_on && tag.is_tagged();
            let tenured = age + 1 >= tenure;
            if eager || tenured {
                let dest = self.policy.promotion_space(heap, tag);
                self.promote(heap, id, dest);
                if eager {
                    self.stats.eager_promotions += 1;
                } else {
                    self.stats.tenured_promotions += 1;
                }
            } else if heap.copy_to_survivor(id) {
                self.stats.survivor_copies += 1;
            } else {
                // Survivor space overflow: promote instead.
                let dest = self.policy.promotion_space(heap, tag);
                self.promote(heap, id, dest);
                self.stats.tenured_promotions += 1;
            }
        }

        // --- remembered-set maintenance ----------------------------------
        // Newly promoted objects that still reference young survivors are
        // already covered: `move_to_old` dirties the card of every
        // young-pointing *slot* as part of the move (a header-only mark
        // here used to under-dirty multi-card arrays).
        //
        // Scanned cards stay dirty if their objects still point into the
        // young generation (e.g. a reference to an object that merely moved
        // to a survivor space); otherwise they are cleaned — unless stuck.
        for sc in scanned {
            let still_young = sc.objects.iter().any(|id| {
                heap.is_live(*id)
                    && heap
                        .obj(*id)
                        .refs
                        .iter()
                        .any(|t| heap.is_live(*t) && heap.obj(*t).in_young())
            });
            if still_young {
                let (start, _) = heap.card_table(sc.space).card_range(sc.card);
                heap.card_table_mut(sc.space).mark_dirty(start);
            } else {
                heap.card_table_mut(sc.space).clean(sc.card);
            }
        }

        // --- sweep --------------------------------------------------------
        for id in young {
            if !visited.contains(&id) {
                heap.free(id);
                self.stats.young_freed += 1;
            }
        }
        heap.finish_minor();

        // Kingsguard-Writes: rescue write-hot objects into DRAM.
        if self.policy.write_migration() {
            self.write_rationing_pass(heap);
        }
        self.run_verify(heap, roots, mheap::VerifyPoint::AfterMinor);

        let pause_ns = heap.mem().clock().now_ns() - pause_start;
        self.minor_pauses.record(pause_ns);
        let moved = self.stats.total_promotions() + self.stats.survivor_copies - moved_before;
        let freed = self.stats.young_freed - freed_before;
        self.events.push(crate::stats::GcEvent {
            kind: crate::stats::GcKind::Minor,
            start_ns: pause_start,
            pause_ns,
            moved,
            freed,
        });
        heap.observer().emit(
            heap.mem().clock().now_ns(),
            &obs::Event::MinorGcEnd {
                pause_ns,
                moved,
                freed,
            },
        );
        heap.mem_mut().enter_phase(prev);
    }

    /// Walk every old space's dirty cards, enqueueing young targets with
    /// the source object's tag. Returns the scanned cards for post-
    /// evacuation cleaning.
    fn scan_dirty_cards(
        &mut self,
        heap: &mut Heap,
        queue: &mut VecDeque<(ObjId, MemTag)>,
    ) -> Vec<ScannedCard> {
        let mut scanned = Vec::new();
        for old_id in heap.old_space_ids() {
            // Word-skipping cursor over the dirty bitmap: no snapshot
            // allocation, and cleaning/sticking the card under the cursor
            // never disturbs cards ahead of it.
            let mut cursor = 0usize;
            while let Some(card) = heap.card_table(old_id).next_dirty_from(cursor) {
                cursor = card + 1;
                let (start, end) = heap.card_table(old_id).card_range(card);
                let objects = overlapping_objects(heap, old_id, start.0, end.0);
                if objects.is_empty() {
                    heap.card_table_mut(old_id).clean(card);
                    continue;
                }
                // Shared-card pathology (Section 4.2.3): two large arrays
                // meeting inside one card defeat card cleaning.
                let large_arrays = objects
                    .iter()
                    .filter(|id| {
                        let o = heap.obj(**id);
                        o.kind.is_array() && o.size >= self.config.large_array_bytes
                    })
                    .count();
                if !heap.config().card_padding && large_arrays >= 2 {
                    heap.card_table_mut(old_id).mark_stuck(start);
                }
                let stuck = heap.card_table(old_id).is_stuck(card);
                self.stats.cards_scanned += 1;
                for id in &objects {
                    let (size, tag, refs) = {
                        let o = heap.obj(*id);
                        (o.size, o.tag, o.refs.clone())
                    };
                    // A stuck card forces a rescan of the array's every
                    // element; a clean scan touches only the card's window.
                    let bytes = if stuck { size } else { size.min(CARD_BYTES) };
                    heap.read_bytes(*id, bytes);
                    self.stats.card_scan_bytes += bytes;
                    if stuck {
                        self.stats.stuck_card_rescans += 1;
                        // Scanning every element means examining every
                        // referenced object's header to test whether it
                        // still lives in the young generation — random
                        // accesses that NVM's latency punishes.
                        if let Some(first_live) = refs.iter().find(|t| heap.is_live(**t)) {
                            let n_refs = refs.len() as u64;
                            let target_addr = heap.obj(*first_live).addr;
                            let header_bytes = n_refs * mheap::HEADER_BYTES;
                            // Pointer chasing: no prefetcher helps, and
                            // the threads contend on the same arrays.
                            heap.mem_mut().access(
                                target_addr,
                                hybridmem::AccessKind::Read,
                                header_bytes,
                                hybridmem::AccessProfile {
                                    threads: 16.0,
                                    mlp: 1.0,
                                },
                            );
                            self.stats.card_scan_bytes += header_bytes;
                        }
                    }
                    for t in refs {
                        if heap.is_live(t) && heap.obj(t).in_young() {
                            queue.push_back((t, tag));
                        }
                    }
                }
                scanned.push(ScannedCard {
                    space: old_id,
                    card,
                    objects,
                });
            }
        }
        scanned
    }

    /// Kingsguard-Writes: ration the DRAM old space by observed writes —
    /// objects written heavily since the last pass move to DRAM, and DRAM
    /// residents that went write-cold are demoted back to NVM. Read-mostly
    /// data (like persisted RDDs) therefore settles in NVM, which is the
    /// source of Kingsguard-Writes' overhead on Big Data workloads
    /// (Section 5.2).
    fn write_rationing_pass(&mut self, heap: &mut Heap) {
        let (Some(dram), Some(nvm)) = (heap.old_dram(), heap.old_nvm()) else {
            return;
        };
        let threshold = self.config.kw_write_threshold;
        let mut hot: Vec<ObjId> = heap
            .write_counts()
            .iter()
            .filter(|(id, n)| {
                **n >= threshold && heap.is_live(**id) && heap.obj(**id).space == SpaceId::Old(nvm)
            })
            .map(|(id, _)| *id)
            .collect();
        // The write-count table is a hash map; keep migration order
        // deterministic.
        hot.sort_unstable();
        let cold: Vec<ObjId> = heap
            .old(dram)
            .objects()
            .iter()
            .copied()
            .filter(|id| {
                heap.is_live(*id)
                    && heap.obj(*id).space == SpaceId::Old(dram)
                    && heap.write_counts().get(id).copied().unwrap_or(0) < threshold
            })
            .collect();
        let mut moved_any = false;
        for id in hot {
            if heap.move_to_old(id, dram).is_ok() {
                self.stats.write_migrations += 1;
                moved_any = true;
            }
        }
        for id in cold {
            if heap.move_to_old(id, nvm).is_ok() {
                self.stats.write_migrations += 1;
                moved_any = true;
            }
        }
        heap.clear_write_counts();
        if moved_any {
            // Migrated objects leave stale entries in their source space's
            // resident list; drop them so later collections see each object
            // exactly once.
            for space in heap.old_space_ids() {
                let live: Vec<ObjId> = heap
                    .old(space)
                    .objects()
                    .iter()
                    .copied()
                    .filter(|id| heap.is_live(*id) && heap.obj(*id).space == SpaceId::Old(space))
                    .collect();
                let used = heap.old(space).used();
                heap.retain_old(space, live, used);
            }
        }
    }
}

/// Objects of `space` whose extents intersect `[start, end)`, found by
/// binary search over the space's address-ordered resident list.
pub(crate) fn overlapping_objects(
    heap: &Heap,
    space: OldSpaceId,
    start: u64,
    end: u64,
) -> Vec<ObjId> {
    let objs = heap.old(space).objects();
    // First object whose end is past `start`.
    let lo = objs.partition_point(|id| heap.obj(*id).end().0 <= start);
    let mut out = Vec::new();
    for id in &objs[lo..] {
        let o = heap.obj(*id);
        if o.addr.0 >= end {
            break;
        }
        out.push(*id);
    }
    out
}

/// Map from card index to overlapping objects — exposed for tests and the
/// card-scan cost accounting in benches.
pub fn card_population(heap: &Heap, space: OldSpaceId) -> HashMap<usize, Vec<ObjId>> {
    let table = heap.card_table(space);
    let mut out: HashMap<usize, Vec<ObjId>> = HashMap::new();
    for idx in 0..table.len() {
        let (s, e) = table.card_range(idx);
        let objs = overlapping_objects(heap, space, s.0, e.0);
        if !objs.is_empty() {
            out.insert(idx, objs);
        }
    }
    out
}
