//! The RDD access-frequency table (paper Section 4.2.2).
//!
//! Panthera's instrumented call sites invoke a native method on every RDD
//! method call (map, reduce, ...); the JVM keeps a hash table from RDD
//! object to call count. At each major GC the counts drive re-assessment of
//! RDD placement, after which they are reset.

use std::collections::HashMap;

/// Per-RDD method-call counters.
#[derive(Debug, Clone, Default)]
pub struct AccessFreqTable {
    calls: HashMap<u32, u64>,
    total_monitored: u64,
}

impl AccessFreqTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one method call on RDD `rdd_id`.
    pub fn record_call(&mut self, rdd_id: u32) {
        *self.calls.entry(rdd_id).or_insert(0) += 1;
        self.total_monitored += 1;
    }

    /// Calls observed on `rdd_id` since the last reset.
    pub fn calls(&self, rdd_id: u32) -> u64 {
        self.calls.get(&rdd_id).copied().unwrap_or(0)
    }

    /// All calls ever monitored (Table 5's "# Calls monitored").
    pub fn total_monitored(&self) -> u64 {
        self.total_monitored
    }

    /// Reset the per-RDD counts (done at the end of each major GC);
    /// the lifetime total is preserved.
    pub fn reset(&mut self) {
        self.calls.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut t = AccessFreqTable::new();
        t.record_call(1);
        t.record_call(1);
        t.record_call(2);
        assert_eq!(t.calls(1), 2);
        assert_eq!(t.calls(2), 1);
        assert_eq!(t.calls(3), 0);
        assert_eq!(t.total_monitored(), 3);
        t.reset();
        assert_eq!(t.calls(1), 0);
        assert_eq!(t.total_monitored(), 3, "lifetime total survives resets");
    }
}
