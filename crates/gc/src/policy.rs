//! Placement policies: where arrays are pretenured and survivors promoted.
//!
//! The collectors in this crate are policy-parameterized so the paper's
//! baselines and Panthera share one GC implementation:
//!
//! * [`PantheraPolicy`] — Table 1 of the paper: tagged arrays pretenure
//!   into the matching old space, tagged survivors are *eagerly promoted*
//!   during tracing, tags propagate along references, and mis-placed RDDs
//!   are migrated at major GCs.
//! * [`UnifiedPolicy`] — one old space; models the DRAM-only baseline, the
//!   *unmanaged* interleaved baseline, and Kingsguard-Nursery (old
//!   generation pinned to NVM).
//! * [`WriteRationingPolicy`] — Kingsguard-Writes: everything old defaults
//!   to NVM and write-intensive objects migrate to the DRAM space, paid for
//!   by write-monitoring barriers.

use mheap::{Heap, MemTag, OldSpaceId};

/// Decides object placement for the collectors.
///
/// Implementations must be consistent with the heap's
/// [`OldGenLayout`](mheap::OldGenLayout): split-layout policies require a
/// DRAM and an NVM old space, unified policies a single old space.
pub trait PlacementPolicy: std::fmt::Debug {
    /// Short name for reports ("panthera", "unmanaged", ...).
    fn name(&self) -> &'static str;

    /// Old space a materialized RDD array with tag `tag` should pretenure
    /// into, or `None` to allocate it in the young generation.
    fn array_space(&self, heap: &Heap, tag: MemTag) -> Option<OldSpaceId>;

    /// Old space a surviving young object with tag `tag` promotes to.
    fn promotion_space(&self, heap: &Heap, tag: MemTag) -> OldSpaceId;

    /// Promote tagged objects immediately during tracing instead of aging
    /// them through the survivor spaces (Section 4.2.2).
    fn eager_promotion(&self) -> bool {
        false
    }

    /// Propagate `MEMORY_BITS` along references during tracing.
    fn propagate_tags(&self) -> bool {
        false
    }

    /// Re-assess RDD placement from access frequencies at major GCs.
    fn dynamic_migration(&self) -> bool {
        false
    }

    /// Migrate write-hot old objects to DRAM (Kingsguard-Writes).
    fn write_migration(&self) -> bool {
        false
    }
}

/// Panthera's semantics-aware policy (Table 1).
#[derive(Debug, Clone)]
pub struct PantheraPolicy {
    /// Enable eager promotion (ablation toggle; Section 5.3 credits it with
    /// ~9% of the GC improvement).
    pub eager_promotion: bool,
    /// Enable major-GC dynamic migration (Section 5.5 ablation).
    pub dynamic_migration: bool,
}

impl Default for PantheraPolicy {
    fn default() -> Self {
        PantheraPolicy {
            eager_promotion: true,
            dynamic_migration: true,
        }
    }
}

impl PlacementPolicy for PantheraPolicy {
    fn name(&self) -> &'static str {
        "panthera"
    }

    fn array_space(&self, heap: &Heap, tag: MemTag) -> Option<OldSpaceId> {
        match tag {
            MemTag::Dram => Some(heap.old_dram().expect("split layout")),
            MemTag::Nvm => Some(heap.old_nvm().expect("split layout")),
            MemTag::None => None,
        }
    }

    fn promotion_space(&self, heap: &Heap, tag: MemTag) -> OldSpaceId {
        match tag {
            MemTag::Dram => heap.old_dram().expect("split layout"),
            // Untagged long-lived objects default to NVM (Section 4.1).
            MemTag::Nvm | MemTag::None => heap.old_nvm().expect("split layout"),
        }
    }

    fn eager_promotion(&self) -> bool {
        self.eager_promotion
    }

    fn propagate_tags(&self) -> bool {
        true
    }

    fn dynamic_migration(&self) -> bool {
        self.dynamic_migration
    }
}

/// A single unified old space; placement ignores tags entirely.
#[derive(Debug, Clone)]
pub struct UnifiedPolicy {
    /// Report name (e.g. "dram-only", "unmanaged", "kingsguard-nursery").
    pub label: &'static str,
}

impl PlacementPolicy for UnifiedPolicy {
    fn name(&self) -> &'static str {
        self.label
    }

    fn array_space(&self, _heap: &Heap, _tag: MemTag) -> Option<OldSpaceId> {
        // RDD backbone arrays are humongous; like HotSpot, allocate them
        // directly in the old generation.
        Some(OldSpaceId(0))
    }

    fn promotion_space(&self, _heap: &Heap, _tag: MemTag) -> OldSpaceId {
        OldSpaceId(0)
    }
}

/// Kingsguard-Writes: old data defaults to NVM; objects observed to take
/// many writes migrate to the DRAM old space.
#[derive(Debug, Clone, Default)]
pub struct WriteRationingPolicy;

impl PlacementPolicy for WriteRationingPolicy {
    fn name(&self) -> &'static str {
        "kingsguard-writes"
    }

    fn array_space(&self, heap: &Heap, _tag: MemTag) -> Option<OldSpaceId> {
        Some(heap.old_nvm().expect("split layout"))
    }

    fn promotion_space(&self, heap: &Heap, _tag: MemTag) -> OldSpaceId {
        heap.old_nvm().expect("split layout")
    }

    fn write_migration(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridmem::MemorySystemConfig;
    use mheap::HeapConfig;

    fn split_heap() -> Heap {
        Heap::new(
            HeapConfig::panthera(600_000, 1.0 / 3.0),
            MemorySystemConfig::with_capacities(200_000, 400_000),
        )
        .unwrap()
    }

    #[test]
    fn panthera_follows_table_1() {
        let h = split_heap();
        let p = PantheraPolicy::default();
        assert_eq!(p.array_space(&h, MemTag::Dram), h.old_dram());
        assert_eq!(p.array_space(&h, MemTag::Nvm), h.old_nvm());
        assert_eq!(p.array_space(&h, MemTag::None), None);
        assert_eq!(p.promotion_space(&h, MemTag::Dram), h.old_dram().unwrap());
        assert_eq!(p.promotion_space(&h, MemTag::None), h.old_nvm().unwrap());
        assert!(p.eager_promotion() && p.propagate_tags() && p.dynamic_migration());
        assert!(!p.write_migration());
    }

    #[test]
    fn unified_ignores_tags() {
        let h = split_heap();
        let p = UnifiedPolicy { label: "unmanaged" };
        for tag in [MemTag::None, MemTag::Dram, MemTag::Nvm] {
            assert_eq!(p.array_space(&h, tag), Some(OldSpaceId(0)));
            assert_eq!(p.promotion_space(&h, tag), OldSpaceId(0));
        }
        assert!(!p.eager_promotion() && !p.propagate_tags());
    }

    #[test]
    fn kingsguard_writes_defaults_to_nvm() {
        let h = split_heap();
        let p = WriteRationingPolicy;
        assert_eq!(p.array_space(&h, MemTag::Dram), h.old_nvm());
        assert_eq!(p.promotion_space(&h, MemTag::Dram), h.old_nvm().unwrap());
        assert!(p.write_migration());
    }
}
