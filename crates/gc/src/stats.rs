//! Collector statistics for the evaluation's GC breakdowns (Figure 5,
//! Table 5, and the Section 5.3 optimization accounting).

use std::cell::RefCell;
use std::fmt;

/// Distribution of individual GC pause durations, in nanoseconds.
///
/// Section 5.2 notes that one node's GC pause holds up the whole cluster,
/// so *individual* pause times matter beyond the aggregate: these feed the
/// pause percentiles in run reports.
///
/// Quantile queries sort lazily: the first [`PauseStats::quantile_ns`]
/// call after a [`PauseStats::record`] sorts a cached copy once, and
/// subsequent queries reuse it.
#[derive(Clone, Default)]
pub struct PauseStats {
    pauses_ns: Vec<f64>,
    sorted: RefCell<Option<Vec<f64>>>,
}

impl fmt::Debug for PauseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The sort cache is a query-side memo, not state.
        f.debug_struct("PauseStats")
            .field("pauses_ns", &self.pauses_ns)
            .finish()
    }
}

impl PauseStats {
    /// Record one pause.
    pub fn record(&mut self, ns: f64) {
        self.pauses_ns.push(ns);
        *self.sorted.get_mut() = None;
    }

    /// Number of pauses recorded.
    pub fn count(&self) -> usize {
        self.pauses_ns.len()
    }

    /// Longest pause, in nanoseconds (0 if none).
    pub fn max_ns(&self) -> f64 {
        self.pauses_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Mean pause, in nanoseconds (0 if none).
    pub fn mean_ns(&self) -> f64 {
        if self.pauses_ns.is_empty() {
            0.0
        } else {
            self.pauses_ns.iter().sum::<f64>() / self.pauses_ns.len() as f64
        }
    }

    /// The `q`-quantile pause (nearest-rank). Out-of-range `q` is a bug
    /// in the caller: debug builds panic, release builds clamp `q` into
    /// `[0, 1]` and answer anyway.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let q = q.clamp(0.0, 1.0);
        if self.pauses_ns.is_empty() {
            return 0.0;
        }
        let mut cache = self.sorted.borrow_mut();
        let sorted = cache.get_or_insert_with(|| {
            let mut s = self.pauses_ns.clone();
            s.sort_by(f64::total_cmp);
            s
        });
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    }

    /// Absorb another distribution (cluster report aggregation: one
    /// executor's pauses appended to the aggregate's). Order-preserving
    /// concatenation, so merging in executor-id order is deterministic.
    pub fn merge(&mut self, other: &PauseStats) {
        self.pauses_ns.extend_from_slice(&other.pauses_ns);
        *self.sorted.get_mut() = None;
    }

    /// Serialize count, mean, key quantiles, and max as a JSON object.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("count", Json::UInt(self.count() as u64)),
            ("mean_ns", Json::Num(self.mean_ns())),
            ("p50_ns", Json::Num(self.quantile_ns(0.50))),
            ("p90_ns", Json::Num(self.quantile_ns(0.90))),
            ("p99_ns", Json::Num(self.quantile_ns(0.99))),
            ("max_ns", Json::Num(self.max_ns())),
        ])
    }
}

/// Which collector ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation scavenge.
    Minor,
    /// Full-heap mark-compact.
    Major,
}

/// One collection, as recorded in the event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcEvent {
    /// Minor or major.
    pub kind: GcKind,
    /// Simulated start time, nanoseconds.
    pub start_ns: f64,
    /// Pause duration, nanoseconds.
    pub pause_ns: f64,
    /// Objects promoted (minor) or migrated (major).
    pub moved: u64,
    /// Objects reclaimed.
    pub freed: u64,
}

/// Counters accumulated across a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcStats {
    /// Minor (young-generation) collections run.
    pub minor_count: u64,
    /// Major (full-heap) collections run.
    pub major_count: u64,
    /// Young objects copied to a survivor space.
    pub survivor_copies: u64,
    /// Objects promoted because they reached the tenure threshold.
    pub tenured_promotions: u64,
    /// Objects promoted eagerly because their `MEMORY_BITS` were set.
    pub eager_promotions: u64,
    /// Promotions that fell back to NVM because the preferred DRAM old
    /// space was full.
    pub promotion_fallbacks: u64,
    /// Dynamic migrations abandoned because the destination old space was
    /// full; the object was re-appended to its source space.
    pub migration_fallbacks: u64,
    /// Young objects reclaimed.
    pub young_freed: u64,
    /// Old objects reclaimed.
    pub old_freed: u64,
    /// Dirty cards scanned across all minor GCs.
    pub cards_scanned: u64,
    /// Bytes read while scanning dirty cards.
    pub card_scan_bytes: u64,
    /// Full-array rescans forced by stuck (shared) cards.
    pub stuck_card_rescans: u64,
    /// RDD arrays migrated between DRAM and NVM by dynamic re-assessment
    /// (Table 5's "# RDDs migrated").
    pub rdds_migrated: u64,
    /// Objects moved by Kingsguard-Writes write-rationing migration.
    pub write_migrations: u64,
}

impl GcStats {
    /// Total promotions of any kind.
    pub fn total_promotions(&self) -> u64 {
        self.tenured_promotions + self.eager_promotions
    }

    /// Serialize every counter as a JSON object with stable key order.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("minor_count", Json::UInt(self.minor_count)),
            ("major_count", Json::UInt(self.major_count)),
            ("survivor_copies", Json::UInt(self.survivor_copies)),
            ("tenured_promotions", Json::UInt(self.tenured_promotions)),
            ("eager_promotions", Json::UInt(self.eager_promotions)),
            ("promotion_fallbacks", Json::UInt(self.promotion_fallbacks)),
            ("migration_fallbacks", Json::UInt(self.migration_fallbacks)),
            ("young_freed", Json::UInt(self.young_freed)),
            ("old_freed", Json::UInt(self.old_freed)),
            ("cards_scanned", Json::UInt(self.cards_scanned)),
            ("card_scan_bytes", Json::UInt(self.card_scan_bytes)),
            ("stuck_card_rescans", Json::UInt(self.stuck_card_rescans)),
            ("rdds_migrated", Json::UInt(self.rdds_migrated)),
            ("write_migrations", Json::UInt(self.write_migrations)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = GcStats {
            tenured_promotions: 3,
            eager_promotions: 4,
            ..Default::default()
        };
        assert_eq!(s.total_promotions(), 7);
    }

    #[test]
    fn pause_quantiles() {
        let mut p = PauseStats::default();
        for v in [10.0, 20.0, 30.0, 40.0, 100.0] {
            p.record(v);
        }
        assert_eq!(p.count(), 5);
        assert_eq!(p.max_ns(), 100.0);
        assert_eq!(p.mean_ns(), 40.0);
        assert_eq!(p.quantile_ns(0.0), 10.0);
        assert_eq!(p.quantile_ns(0.5), 30.0);
        assert_eq!(p.quantile_ns(1.0), 100.0);
    }

    #[test]
    fn empty_pauses_are_zero() {
        let p = PauseStats::default();
        assert_eq!(p.max_ns(), 0.0);
        assert_eq!(p.mean_ns(), 0.0);
        assert_eq!(p.quantile_ns(0.9), 0.0);
    }

    #[test]
    fn quantile_cache_invalidates_on_record() {
        let mut p = PauseStats::default();
        p.record(10.0);
        assert_eq!(p.quantile_ns(1.0), 10.0); // builds the cache
        p.record(50.0);
        assert_eq!(p.quantile_ns(1.0), 50.0); // must see the new pause
        assert_eq!(p.quantile_ns(0.0), 10.0); // and reuse the rebuilt cache
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        PauseStats::default().quantile_ns(1.5);
    }
}
