//! Collector statistics for the evaluation's GC breakdowns (Figure 5,
//! Table 5, and the Section 5.3 optimization accounting).

/// Distribution of individual GC pause durations, in nanoseconds.
///
/// Section 5.2 notes that one node's GC pause holds up the whole cluster,
/// so *individual* pause times matter beyond the aggregate: these feed the
/// pause percentiles in run reports.
#[derive(Debug, Clone, Default)]
pub struct PauseStats {
    pauses_ns: Vec<f64>,
}

impl PauseStats {
    /// Record one pause.
    pub fn record(&mut self, ns: f64) {
        self.pauses_ns.push(ns);
    }

    /// Number of pauses recorded.
    pub fn count(&self) -> usize {
        self.pauses_ns.len()
    }

    /// Longest pause, in nanoseconds (0 if none).
    pub fn max_ns(&self) -> f64 {
        self.pauses_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Mean pause, in nanoseconds (0 if none).
    pub fn mean_ns(&self) -> f64 {
        if self.pauses_ns.is_empty() {
            0.0
        } else {
            self.pauses_ns.iter().sum::<f64>() / self.pauses_ns.len() as f64
        }
    }

    /// The `q`-quantile pause (nearest-rank), `q` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.pauses_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.pauses_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    }
}

/// Which collector ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Young-generation scavenge.
    Minor,
    /// Full-heap mark-compact.
    Major,
}

/// One collection, as recorded in the event log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcEvent {
    /// Minor or major.
    pub kind: GcKind,
    /// Simulated start time, nanoseconds.
    pub start_ns: f64,
    /// Pause duration, nanoseconds.
    pub pause_ns: f64,
    /// Objects promoted (minor) or migrated (major).
    pub moved: u64,
    /// Objects reclaimed.
    pub freed: u64,
}

/// Counters accumulated across a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcStats {
    /// Minor (young-generation) collections run.
    pub minor_count: u64,
    /// Major (full-heap) collections run.
    pub major_count: u64,
    /// Young objects copied to a survivor space.
    pub survivor_copies: u64,
    /// Objects promoted because they reached the tenure threshold.
    pub tenured_promotions: u64,
    /// Objects promoted eagerly because their `MEMORY_BITS` were set.
    pub eager_promotions: u64,
    /// Promotions that fell back to NVM because the preferred DRAM old
    /// space was full.
    pub promotion_fallbacks: u64,
    /// Young objects reclaimed.
    pub young_freed: u64,
    /// Old objects reclaimed.
    pub old_freed: u64,
    /// Dirty cards scanned across all minor GCs.
    pub cards_scanned: u64,
    /// Bytes read while scanning dirty cards.
    pub card_scan_bytes: u64,
    /// Full-array rescans forced by stuck (shared) cards.
    pub stuck_card_rescans: u64,
    /// RDD arrays migrated between DRAM and NVM by dynamic re-assessment
    /// (Table 5's "# RDDs migrated").
    pub rdds_migrated: u64,
    /// Objects moved by Kingsguard-Writes write-rationing migration.
    pub write_migrations: u64,
}

impl GcStats {
    /// Total promotions of any kind.
    pub fn total_promotions(&self) -> u64 {
        self.tenured_promotions + self.eager_promotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let s = GcStats {
            tenured_promotions: 3,
            eager_promotions: 4,
            ..Default::default()
        };
        assert_eq!(s.total_promotions(), 7);
    }

    #[test]
    fn pause_quantiles() {
        let mut p = PauseStats::default();
        for v in [10.0, 20.0, 30.0, 40.0, 100.0] {
            p.record(v);
        }
        assert_eq!(p.count(), 5);
        assert_eq!(p.max_ns(), 100.0);
        assert_eq!(p.mean_ns(), 40.0);
        assert_eq!(p.quantile_ns(0.0), 10.0);
        assert_eq!(p.quantile_ns(0.5), 30.0);
        assert_eq!(p.quantile_ns(1.0), 100.0);
    }

    #[test]
    fn empty_pauses_are_zero() {
        let p = PauseStats::default();
        assert_eq!(p.max_ns(), 0.0);
        assert_eq!(p.mean_ns(), 0.0);
        assert_eq!(p.quantile_ns(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn bad_quantile_panics() {
        PauseStats::default().quantile_ns(1.5);
    }
}
