//! Scenario tests for the collectors: each test builds a small heap,
//! arranges an object graph the paper cares about, runs collections, and
//! checks both placement and cost accounting.

use gc::{GcConfig, GcCoordinator, PantheraPolicy, UnifiedPolicy, WriteRationingPolicy};
use hybridmem::{DeviceKind, MemorySystemConfig, Phase};
use mheap::{
    Heap, HeapConfig, MemTag, ObjId, ObjKind, OldGenLayout, Payload, RootSet, SpaceId, VerifyPoint,
};

fn split_heap(heap_bytes: u64) -> Heap {
    let cfg = HeapConfig::panthera(heap_bytes, 1.0 / 3.0);
    let dram = (heap_bytes as f64 / 3.0) as u64;
    Heap::new(
        cfg,
        MemorySystemConfig::with_capacities(dram, heap_bytes - dram),
    )
    .unwrap()
}

fn panthera() -> GcCoordinator {
    GcCoordinator::new(Box::new(PantheraPolicy::default()))
}

/// A Panthera coordinator with heap verification forced on, so the
/// regression tests below also exercise the verifier at every GC point.
fn verified_panthera() -> GcCoordinator {
    GcCoordinator::with_config(
        Box::new(PantheraPolicy::default()),
        GcConfig {
            verify: true,
            ..GcConfig::default()
        },
    )
}

#[test]
fn minor_gc_frees_unreachable_young() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let roots = RootSet::new();
    for _ in 0..100 {
        gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(1),
        );
    }
    assert_eq!(heap.live_objects(), 100);
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(heap.live_objects(), 0);
    assert_eq!(gc.stats().young_freed, 100);
    assert_eq!(heap.eden().used(), 0);
}

#[test]
fn rooted_untagged_objects_age_through_survivors() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let id = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(7),
    );
    roots.push(id);

    gc.minor_gc(&mut heap, &roots);
    assert!(heap.obj(id).in_young(), "age 1: still young");
    gc.minor_gc(&mut heap, &roots);
    assert!(heap.obj(id).in_young(), "age 2: still young");
    gc.minor_gc(&mut heap, &roots);
    // Tenure threshold 3: now promoted, untagged objects default to NVM.
    assert_eq!(heap.obj(id).space, SpaceId::Old(heap.old_nvm().unwrap()));
    assert_eq!(gc.stats().tenured_promotions, 1);
    // Payload survives the moves.
    assert_eq!(heap.obj(id).payload.as_long(), Some(7));
}

#[test]
fn eager_promotion_of_tagged_objects() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let d = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::Dram,
        vec![],
        Payload::Long(1),
    );
    let n = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::Nvm,
        vec![],
        Payload::Long(2),
    );
    roots.push(d);
    roots.push(n);
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(heap.obj(d).space, SpaceId::Old(heap.old_dram().unwrap()));
    assert_eq!(heap.obj(n).space, SpaceId::Old(heap.old_nvm().unwrap()));
    assert_eq!(gc.stats().eager_promotions, 2);
}

#[test]
fn tags_propagate_from_old_arrays_through_cards() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    // A persisted RDD's array pretenured in NVM (as rdd_alloc would do).
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 42, 8, MemTag::Nvm);
    roots.push(arr);
    // Its tuples are created in eden and linked in: the barrier dirties
    // the array's cards.
    let mut tuples = Vec::new();
    for i in 0..8 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
        tuples.push(t);
    }
    gc.minor_gc(&mut heap, &roots);
    // Tag propagation + eager promotion: every tuple followed the array.
    for t in tuples {
        let o = heap.obj(t);
        assert_eq!(o.tag, MemTag::Nvm, "tag propagated");
        assert_eq!(
            o.space,
            SpaceId::Old(heap.old_nvm().unwrap()),
            "eagerly promoted"
        );
    }
    // Card no longer references young objects, so it was cleaned.
    assert_eq!(heap.card_table(heap.old_nvm().unwrap()).dirty_count(), 0);
}

#[test]
fn dram_wins_tag_conflicts() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let nvm_arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 4, MemTag::Nvm);
    let dram_arr = gc.alloc_rdd_array(&mut heap, &roots, 2, 4, MemTag::Dram);
    roots.push(nvm_arr);
    roots.push(dram_arr);
    // One shared tuple referenced by both arrays (the map-reuses-keys case
    // from Section 3).
    let shared = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(0),
    );
    heap.push_ref(nvm_arr, shared);
    heap.push_ref(dram_arr, shared);
    gc.minor_gc(&mut heap, &roots);
    let o = heap.obj(shared);
    assert_eq!(o.tag, MemTag::Dram, "DRAM > NVM on conflict");
    assert_eq!(o.space, SpaceId::Old(heap.old_dram().unwrap()));
}

#[test]
fn promotion_falls_back_to_nvm_when_dram_full() {
    // Tiny DRAM old space: 1/4 ratio on a small heap.
    let heap_bytes = 240_000u64;
    let cfg = HeapConfig::panthera(heap_bytes, 0.26);
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(60_000, 180_000)).unwrap();
    let mut gc = panthera();
    let mut roots = RootSet::new();
    // Fill the DRAM old space directly.
    let dram = heap.old_dram().unwrap();
    while heap
        .alloc_old(
            dram,
            ObjKind::Control,
            MemTag::Dram,
            vec![],
            Payload::Long(0),
        )
        .is_ok()
    {}
    // Now a DRAM-tagged young object (bigger than any leftover slack in the
    // DRAM space) must fall back to NVM on promotion.
    let id = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::Dram,
        vec![],
        Payload::doubles(vec![1.0; 16]),
    );
    roots.push(id);
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(heap.obj(id).space, SpaceId::Old(heap.old_nvm().unwrap()));
    assert!(gc.stats().promotion_fallbacks > 0);
}

#[test]
fn shared_cards_stick_without_padding_and_rescan_arrays() {
    let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
    cfg.card_padding = false;
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(200_000, 400_000)).unwrap();
    let mut gc = panthera();
    let mut roots = RootSet::new();

    // Two large arrays, back to back: A's tail and B's head share a card.
    let a = gc.alloc_rdd_array(&mut heap, &roots, 1, 150, MemTag::Nvm);
    let b = gc.alloc_rdd_array(&mut heap, &roots, 2, 150, MemTag::Nvm);
    roots.push(a);
    roots.push(b);
    // Fill both arrays; tail slots dirty the shared boundary card.
    for i in 0..150 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(a, t);
        let t2 = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(b, t2);
    }
    gc.minor_gc(&mut heap, &roots);
    assert!(gc.stats().stuck_card_rescans > 0, "pathology triggered");
    let nvm = heap.old_nvm().unwrap();
    assert!(
        heap.card_table(nvm).dirty_count() > 0,
        "stuck card stays dirty"
    );

    // Every further minor GC rescans both full arrays even with no writes.
    let before = gc.stats().card_scan_bytes;
    gc.minor_gc(&mut heap, &roots);
    let delta = gc.stats().card_scan_bytes - before;
    let full = heap.obj(a).size + heap.obj(b).size;
    assert!(
        delta >= full,
        "rescan cost covers both arrays: {delta} vs {full}"
    );
}

#[test]
fn card_padding_prevents_stuck_cards() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let a = gc.alloc_rdd_array(&mut heap, &roots, 1, 150, MemTag::Nvm);
    let b = gc.alloc_rdd_array(&mut heap, &roots, 2, 150, MemTag::Nvm);
    roots.push(a);
    roots.push(b);
    for i in 0..150 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(a, t);
        let t2 = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(b, t2);
    }
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(gc.stats().stuck_card_rescans, 0);
    assert_eq!(heap.card_table(heap.old_nvm().unwrap()).dirty_count(), 0);
}

#[test]
fn major_gc_reclaims_and_compacts_old() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let nvm = heap.old_nvm().unwrap();
    let keep = heap
        .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(1))
        .unwrap();
    let drop1 = heap
        .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(2))
        .unwrap();
    let keep2 = heap
        .alloc_old(nvm, ObjKind::Tuple, MemTag::Nvm, vec![], Payload::Long(3))
        .unwrap();
    roots.push(keep);
    roots.push(keep2);
    let used_before = heap.old(nvm).used();
    gc.major_gc(&mut heap, &roots);
    assert!(!heap.is_live(drop1));
    assert!(heap.is_live(keep) && heap.is_live(keep2));
    assert!(
        heap.old(nvm).used() < used_before,
        "compaction reclaimed space"
    );
    assert_eq!(gc.stats().old_freed, 1);
    // keep2 slid down into drop1's slot.
    assert_eq!(heap.obj(keep2).addr, heap.obj(keep).end());
}

#[test]
fn dynamic_migration_moves_hot_rdd_to_dram() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    // A "mis-placed" hot RDD in NVM with its tuples.
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 9, 4, MemTag::Nvm);
    roots.push(arr);
    let mut tuples = Vec::new();
    for i in 0..4 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
        tuples.push(t);
    }
    gc.minor_gc(&mut heap, &roots); // tuples follow the array into NVM
    for _ in 0..10 {
        gc.record_rdd_call(&mut heap, 9); // hot!
    }
    gc.major_gc(&mut heap, &roots);
    let dram = heap.old_dram().unwrap();
    assert_eq!(
        heap.obj(arr).space,
        SpaceId::Old(dram),
        "hot array migrated"
    );
    for t in tuples {
        assert_eq!(
            heap.obj(t).space,
            SpaceId::Old(dram),
            "reachable objects follow"
        );
    }
    assert_eq!(gc.stats().rdds_migrated, 1);
    // Frequencies reset after the major GC.
    assert_eq!(gc.freq().calls(9), 0);
}

#[test]
fn dynamic_migration_demotes_cold_rdd_to_nvm() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 5, 4, MemTag::Dram);
    roots.push(arr);
    gc.major_gc(&mut heap, &roots); // zero calls on RDD 5 => cold
    assert_eq!(heap.obj(arr).space, SpaceId::Old(heap.old_nvm().unwrap()));
    assert_eq!(gc.stats().rdds_migrated, 1);
}

#[test]
fn monitoring_is_cheap() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let t0 = heap.mem().clock().now_ns();
    for _ in 0..300 {
        gc.record_rdd_call(&mut heap, 1);
    }
    let dt = heap.mem().clock().now_ns() - t0;
    // 300 calls (PageRank's count over a 20-minute run) cost microseconds.
    assert!(dt < 1e6, "monitoring overhead is negligible: {dt} ns");
    assert_eq!(gc.freq().total_monitored(), 300);
}

#[test]
fn alloc_young_collects_when_eden_fills() {
    let mut heap = split_heap(240_000);
    let mut gc = panthera();
    let roots = RootSet::new();
    // Allocate far more than eden holds; dead garbage is collected along
    // the way.
    for i in 0..2_000 {
        gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::doubles(vec![i as f64; 8]),
        );
    }
    assert!(
        gc.stats().minor_count > 0,
        "eden pressure triggered minor GCs"
    );
    assert!(heap.mem().clock().phase_ns(Phase::MinorGc) > 0.0);
}

#[test]
fn humongous_young_request_is_pretenured() {
    let mut heap = split_heap(240_000);
    let mut gc = panthera();
    let roots = RootSet::new();
    // Bigger than eden (240_000/6 - survivors): goes to the old gen.
    let id = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Control,
        MemTag::None,
        vec![],
        Payload::doubles(vec![0.0; 8_000]),
    );
    assert!(matches!(heap.obj(id).space, SpaceId::Old(_)));
}

#[test]
fn unified_dram_only_never_touches_nvm() {
    let mut cfg = HeapConfig::panthera(600_000, 1.0);
    cfg.old_layout = OldGenLayout::Unified(DeviceKind::Dram);
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(600_000, 0)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(UnifiedPolicy { label: "dram-only" }));
    let mut roots = RootSet::new();
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 64, MemTag::Nvm);
    roots.push(arr);
    for i in 0..64 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
    }
    gc.minor_gc(&mut heap, &roots);
    gc.major_gc(&mut heap, &roots);
    assert_eq!(heap.mem().stats().total_device_bytes(DeviceKind::Nvm), 0);
}

#[test]
fn unmanaged_interleaving_spreads_old_gen() {
    let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
    cfg.old_layout = OldGenLayout::Interleaved { chunk_bytes: 4096 };
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(200_000, 400_000)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(UnifiedPolicy { label: "unmanaged" }));
    let mut roots = RootSet::new();
    // Allocate many arrays across the interleaved old space.
    for r in 0..40 {
        let arr = gc.alloc_rdd_array(&mut heap, &roots, r, 64, MemTag::None);
        roots.push(arr);
        heap.read_object(arr);
    }
    let dram = heap.mem().stats().total_device_bytes(DeviceKind::Dram);
    let nvm = heap.mem().stats().total_device_bytes(DeviceKind::Nvm);
    assert!(
        dram > 0 && nvm > 0,
        "traffic hits both devices: {dram} / {nvm}"
    );
}

#[test]
fn kingsguard_writes_migrates_write_hot_objects() {
    let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
    cfg.track_writes = true;
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(200_000, 400_000)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(WriteRationingPolicy));
    let mut roots = RootSet::new();
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 16, MemTag::Dram);
    roots.push(arr);
    // KW ignores tags: array landed in NVM.
    assert_eq!(heap.obj(arr).space, SpaceId::Old(heap.old_nvm().unwrap()));
    // Hammer it with writes, then collect.
    for i in 0..16 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
    }
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(
        heap.obj(arr).space,
        SpaceId::Old(heap.old_dram().unwrap()),
        "write-hot object rescued to DRAM"
    );
    assert!(gc.stats().write_migrations >= 1);
}

#[test]
fn survivor_overflow_promotes() {
    let mut heap = split_heap(240_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    // Live set far bigger than a survivor space (10% of young = 4 000 B).
    let mut ids: Vec<ObjId> = Vec::new();
    for i in 0..120 {
        let id = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::doubles(vec![i as f64; 8]),
        );
        roots.push(id);
        ids.push(id);
    }
    gc.minor_gc(&mut heap, &roots);
    let promoted = ids
        .iter()
        .filter(|id| matches!(heap.obj(**id).space, SpaceId::Old(_)))
        .count();
    assert!(promoted > 0, "overflowing survivors promoted early");
}

#[test]
fn major_gc_triggered_by_occupancy() {
    let mut heap = split_heap(240_000);
    let mut gc = panthera();
    let roots = RootSet::new();
    let nvm = heap.old_nvm().unwrap();
    // Fill the old NVM space past the trigger with garbage.
    while heap.old(nvm).occupancy() < 0.95 {
        heap.alloc_old(
            nvm,
            ObjKind::Control,
            MemTag::Nvm,
            vec![],
            Payload::doubles(vec![0.0; 32]),
        )
        .unwrap();
    }
    gc.maybe_major(&mut heap, &roots);
    assert_eq!(gc.stats().major_count, 1);
    assert_eq!(heap.old(nvm).used(), 0, "all garbage reclaimed");
}

#[test]
fn root_scopes_release_temporaries() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    roots.push_scope();
    let tmp = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Control,
        MemTag::None,
        vec![],
        Payload::Unit,
    );
    roots.push(tmp);
    gc.minor_gc(&mut heap, &roots);
    assert!(heap.is_live(tmp), "rooted while in scope");
    roots.pop_scope();
    gc.minor_gc(&mut heap, &roots);
    assert!(!heap.is_live(tmp), "collected after scope exit");
}

#[test]
fn gc_time_is_attributed_to_phases() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 32, MemTag::Nvm);
    roots.push(arr);
    for i in 0..32 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
    }
    gc.minor_gc(&mut heap, &roots);
    gc.major_gc(&mut heap, &roots);
    let clock = heap.mem().clock();
    assert!(clock.phase_ns(Phase::MinorGc) > 0.0);
    assert!(clock.phase_ns(Phase::MajorGc) > 0.0);
    assert!(clock.mutator_ns() > 0.0);
    assert!((clock.gc_ns() + clock.mutator_ns() - clock.now_ns()).abs() < 1e-6);
}

#[test]
fn tag_upgrade_repropagates_through_chains() {
    // A chain t1 -> t2 -> t3 first reached via an NVM array, then via a
    // DRAM array: the later (higher-priority) tag must re-propagate down
    // the whole chain even though the objects were already visited.
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let nvm_arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 4, MemTag::Nvm);
    let dram_arr = gc.alloc_rdd_array(&mut heap, &roots, 2, 4, MemTag::Dram);
    roots.push(nvm_arr);
    roots.push(dram_arr);
    let t3 = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(3),
    );
    let t2 = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![t3],
        Payload::Long(2),
    );
    let t1 = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![t2],
        Payload::Long(1),
    );
    // NVM array reaches the chain head; DRAM array also reaches it.
    heap.push_ref(nvm_arr, t1);
    heap.push_ref(dram_arr, t1);
    gc.minor_gc(&mut heap, &roots);
    let dram = heap.old_dram().unwrap();
    for t in [t1, t2, t3] {
        assert_eq!(heap.obj(t).tag, MemTag::Dram, "{t:?} kept a stale tag");
        assert_eq!(heap.obj(t).space, SpaceId::Old(dram));
    }
}

#[test]
fn cards_stay_dirty_while_refs_point_at_survivors() {
    // An old array referencing an *untagged* young object: the object only
    // moves to a survivor space, so the card must stay dirty for the next
    // collection — otherwise the survivor would be lost.
    let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
    cfg.tenure_threshold = 4;
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(200_000, 400_000)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(PantheraPolicy {
        eager_promotion: false,
        dynamic_migration: false,
    }));
    let mut roots = RootSet::new();
    let nvm = heap.old_nvm().unwrap();
    let arr = heap.alloc_array_old(nvm, 1, 4, MemTag::None).unwrap();
    roots.push(arr);
    let t = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(5),
    );
    heap.push_ref(arr, t);

    // Three minor GCs with only the card keeping `t` alive.
    for age in 1..=3 {
        gc.minor_gc(&mut heap, &roots);
        assert!(heap.is_live(t), "survivor lost at age {age}");
        assert!(heap.obj(t).in_young(), "still young at age {age}");
        assert!(
            heap.card_table(nvm).dirty_count() > 0,
            "card cleaned too early at age {age}"
        );
    }
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(heap.obj(t).space, SpaceId::Old(nvm), "tenured at threshold");
    // Now nothing in the array points at the young gen: cards clean.
    gc.minor_gc(&mut heap, &roots);
    assert_eq!(heap.card_table(nvm).dirty_count(), 0);
}

#[test]
fn interleaved_old_gen_spreads_gc_traffic() {
    let mut cfg = HeapConfig::panthera(600_000, 0.5);
    cfg.old_layout = OldGenLayout::Interleaved { chunk_bytes: 4096 };
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(300_000, 300_000)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(UnifiedPolicy { label: "unmanaged" }));
    let mut roots = RootSet::new();
    // Many tagged-less arrays + tuples promoted across the chunk map.
    for r in 0..24 {
        let arr = gc.alloc_rdd_array(&mut heap, &roots, r, 64, MemTag::None);
        roots.push(arr);
        for i in 0..16 {
            let t = gc.alloc_young(
                &mut heap,
                &roots,
                ObjKind::Tuple,
                MemTag::None,
                vec![],
                Payload::Long(i),
            );
            heap.push_ref(arr, t);
        }
        gc.minor_gc(&mut heap, &roots);
    }
    gc.major_gc(&mut heap, &roots);
    let s = heap.mem().stats();
    let gc_dram: u64 = [hybridmem::Phase::MinorGc, hybridmem::Phase::MajorGc]
        .iter()
        .map(|p| {
            s.bytes(*p, DeviceKind::Dram, hybridmem::AccessKind::Read)
                + s.bytes(*p, DeviceKind::Dram, hybridmem::AccessKind::Write)
        })
        .sum();
    let gc_nvm: u64 = [hybridmem::Phase::MinorGc, hybridmem::Phase::MajorGc]
        .iter()
        .map(|p| {
            s.bytes(*p, DeviceKind::Nvm, hybridmem::AccessKind::Read)
                + s.bytes(*p, DeviceKind::Nvm, hybridmem::AccessKind::Write)
        })
        .sum();
    assert!(
        gc_dram > 0 && gc_nvm > 0,
        "GC touches both devices: {gc_dram}/{gc_nvm}"
    );
    // With a 50% chunk map, neither device should dominate absurdly.
    let ratio = gc_dram as f64 / gc_nvm as f64;
    assert!(
        (0.2..5.0).contains(&ratio),
        "interleave ratio off: {ratio:.2}"
    );
}

#[test]
fn pause_statistics_are_recorded() {
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    for i in 0..64 {
        let id = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::doubles(vec![i as f64; 16]),
        );
        if i % 4 == 0 {
            roots.push(id);
        }
    }
    gc.minor_gc(&mut heap, &roots);
    gc.minor_gc(&mut heap, &roots);
    gc.major_gc(&mut heap, &roots);
    assert_eq!(gc.minor_pauses().count(), 2);
    assert_eq!(gc.major_pauses().count(), 1);
    assert!(gc.minor_pauses().max_ns() > 0.0);
    assert!(gc.minor_pauses().mean_ns() <= gc.minor_pauses().max_ns());
    assert!(gc.major_pauses().quantile_ns(1.0) >= gc.major_pauses().quantile_ns(0.0));
}

#[test]
fn heap_integrity_holds_across_collection_cycles() {
    // Build a mutating workload-like object graph and check the heap's
    // structural invariants after every collection.
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let mut arrays = Vec::new();
    for round in 0..6u32 {
        let tag = if round % 2 == 0 {
            MemTag::Dram
        } else {
            MemTag::Nvm
        };
        let arr = gc.alloc_rdd_array(&mut heap, &roots, round, 32, tag);
        roots.push(arr);
        arrays.push(arr);
        for i in 0..32 {
            let t = gc.alloc_young(
                &mut heap,
                &roots,
                ObjKind::Tuple,
                MemTag::None,
                vec![],
                Payload::Long(i),
            );
            heap.push_ref(arr, t);
            // Plus some garbage.
            gc.alloc_young(
                &mut heap,
                &roots,
                ObjKind::Control,
                MemTag::None,
                vec![],
                Payload::Unit,
            );
        }
        gc.minor_gc(&mut heap, &roots);
        heap.check_integrity()
            .unwrap_or_else(|e| panic!("after minor {round}: {e}"));
        if round % 2 == 1 {
            // Drop an old array (unpersist-like), then major-collect.
            let victim = arrays.remove(0);
            roots.remove(victim);
            gc.major_gc(&mut heap, &roots);
            heap.check_integrity()
                .unwrap_or_else(|e| panic!("after major {round}: {e}"));
        }
    }
}

#[test]
fn heap_integrity_holds_under_kingsguard_writes() {
    let mut cfg = HeapConfig::panthera(600_000, 1.0 / 3.0);
    cfg.track_writes = true;
    let mut heap = Heap::new(cfg, MemorySystemConfig::with_capacities(200_000, 400_000)).unwrap();
    let mut gc = GcCoordinator::new(Box::new(WriteRationingPolicy));
    let mut roots = RootSet::new();
    for round in 0..5u32 {
        let arr = gc.alloc_rdd_array(&mut heap, &roots, round, 24, MemTag::None);
        roots.push(arr);
        for i in 0..24 {
            let t = gc.alloc_young(
                &mut heap,
                &roots,
                ObjKind::Tuple,
                MemTag::None,
                vec![],
                Payload::Long(i),
            );
            heap.push_ref(arr, t);
        }
        gc.minor_gc(&mut heap, &roots);
        heap.check_integrity()
            .unwrap_or_else(|e| panic!("KW after minor {round}: {e}"));
    }
    gc.major_gc(&mut heap, &roots);
    heap.check_integrity()
        .unwrap_or_else(|e| panic!("KW after major: {e}"));
}

#[test]
fn event_log_records_every_collection_in_order() {
    use gc::GcKind;
    let mut heap = split_heap(600_000);
    let mut gc = panthera();
    let mut roots = RootSet::new();
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 32, MemTag::Nvm);
    roots.push(arr);
    for i in 0..32 {
        let t = gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Tuple,
            MemTag::None,
            vec![],
            Payload::Long(i),
        );
        heap.push_ref(arr, t);
        // Plus garbage.
        gc.alloc_young(
            &mut heap,
            &roots,
            ObjKind::Control,
            MemTag::None,
            vec![],
            Payload::Unit,
        );
    }
    gc.minor_gc(&mut heap, &roots);
    gc.minor_gc(&mut heap, &roots);
    gc.major_gc(&mut heap, &roots);

    let events = gc.events();
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].kind, GcKind::Minor);
    assert_eq!(events[1].kind, GcKind::Minor);
    assert_eq!(events[2].kind, GcKind::Major);
    // Chronological, positive pauses, and the first minor did the work.
    assert!(events.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    assert!(events.iter().all(|e| e.pause_ns > 0.0));
    assert!(events[0].moved >= 32, "tuples promoted eagerly");
    assert!(events[0].freed >= 32, "garbage reclaimed");
    assert_eq!(events[1].moved, 0, "second minor had nothing to do");
    // Pauses in the log agree with the aggregated stats.
    let minor_total: f64 = events
        .iter()
        .filter(|e| e.kind == GcKind::Minor)
        .map(|e| e.pause_ns)
        .sum();
    assert!((minor_total - gc.minor_pauses().mean_ns() * 2.0).abs() < 1e-6);
}

#[test]
fn failed_migration_reappends_to_source_space() {
    // Regression: a mover whose destination is too full used to be
    // orphaned — removed from its source resident list but never
    // re-appended anywhere, leaving a live object that no card scan or
    // compaction would ever visit again. It must instead stay put in its
    // source space and be counted under `migration_fallbacks`.
    let mut heap = split_heap(600_000);
    let mut gc = verified_panthera();
    let mut roots = RootSet::new();
    let nvm = heap.old_nvm().unwrap();
    let dram = heap.old_dram().unwrap();
    // A cold DRAM-resident RDD: zero recorded calls puts it under the
    // cold threshold, so the major GC plans a demotion to NVM.
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 11, 256, MemTag::Dram);
    roots.push(arr);
    // Fill the NVM destination with rooted objects so the demotion
    // cannot possibly fit.
    while let Ok(filler) = heap.alloc_old(
        nvm,
        ObjKind::Control,
        MemTag::Nvm,
        vec![],
        Payload::doubles(vec![0.0; 32]),
    ) {
        roots.push(filler);
    }
    gc.major_gc(&mut heap, &roots);
    // The mover fell back: still live, still resident in its source
    // space, and the fallback was counted (not as a promotion fallback).
    assert!(heap.is_live(arr));
    assert_eq!(heap.obj(arr).space, SpaceId::Old(dram));
    assert!(
        heap.old(dram).objects().contains(&arr),
        "failed mover must be re-appended to the source resident list"
    );
    assert_eq!(gc.stats().migration_fallbacks, 1);
    assert_eq!(gc.stats().promotion_fallbacks, 0);
    assert_eq!(gc.stats().rdds_migrated, 0);
    // The old code's orphan is exactly what the verifier's resident-list
    // invariant catches; a manual pass must be clean.
    heap.verify(&roots, VerifyPoint::Manual).unwrap();
}

#[test]
fn major_gc_redirties_the_referencing_slot_card() {
    // Regression: the post-major re-dirty loop marked only the card of
    // the *header* of an old object holding young references. For an
    // array spanning several cards, the next minor GC's card scan then
    // missed the referencing slot and freed its young target, leaving a
    // dangling reference.
    let mut heap = split_heap(600_000);
    let mut gc = verified_panthera();
    let mut roots = RootSet::new();
    let nvm = heap.old_nvm().unwrap();
    // A 300-slot NVM array spans several 512-byte cards. Pad the first
    // 200 slots with self-references so the young reference lands in a
    // card well past the header's.
    let arr = gc.alloc_rdd_array(&mut heap, &roots, 21, 300, MemTag::Nvm);
    roots.push(arr);
    for _ in 0..200 {
        heap.push_ref(arr, arr);
    }
    let t = gc.alloc_young(
        &mut heap,
        &roots,
        ObjKind::Tuple,
        MemTag::None,
        vec![],
        Payload::Long(7),
    );
    heap.push_ref(arr, t);
    gc.major_gc(&mut heap, &roots);
    // The card holding slot 200 (not just the header card) must be dirty.
    let slot_addr = heap.obj(arr).slot_addr(200);
    let header_addr = heap.obj(arr).addr;
    let table = heap.card_table(nvm);
    assert_ne!(
        table.card_of(slot_addr),
        table.card_of(header_addr),
        "test must place the reference on a non-header card"
    );
    assert!(
        table.is_dirty(table.card_of(slot_addr)),
        "the referencing slot's card must be re-dirtied after major GC"
    );
    // And the card scan of the next minor GC must therefore keep the
    // young target (reachable only through the old array) alive.
    gc.minor_gc(&mut heap, &roots);
    assert!(heap.is_live(t), "young target reachable only via the card");
    heap.verify(&roots, VerifyPoint::Manual).unwrap();
}
