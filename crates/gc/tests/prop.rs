//! Property tests for the collectors over random object graphs: the
//! reachable survive, the unreachable die, payloads are preserved, and
//! tags propagate to everything reachable from a tagged source.

use gc::{GcCoordinator, PantheraPolicy, UnifiedPolicy};
use hybridmem::{DeviceKind, MemorySystemConfig};
use mheap::{Heap, HeapConfig, MemTag, ObjId, ObjKind, OldGenLayout, Payload, RootSet};
use proptest::prelude::*;
use std::collections::HashSet;

/// A random DAG: `edges[i]` lists children of node `i` (only to lower
/// indices, so the graph is acyclic by construction... actually to any
/// index — cycles are fine for a tracing GC, so allow them).
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    edges: Vec<(usize, usize)>,
    roots: Vec<usize>,
}

fn graph() -> impl Strategy<Value = GraphSpec> {
    (2usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec((0..n, 0..n), 0..n * 2),
            prop::collection::vec(0..n, 0..4),
        )
            .prop_map(move |(edges, roots)| GraphSpec { n, edges, roots })
    })
}

fn build(heap: &mut Heap, gc: &mut GcCoordinator, spec: &GraphSpec) -> Vec<ObjId> {
    let roots = RootSet::new();
    let ids: Vec<ObjId> = (0..spec.n)
        .map(|i| {
            gc.alloc_young(
                heap,
                &roots,
                ObjKind::Tuple,
                MemTag::None,
                vec![],
                Payload::Long(i as i64),
            )
        })
        .collect();
    for (src, dst) in &spec.edges {
        heap.push_ref(ids[*src], ids[*dst]);
    }
    ids
}

fn reachable(spec: &GraphSpec) -> HashSet<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = spec.roots.clone();
    while let Some(i) = stack.pop() {
        if seen.insert(i) {
            for (s, d) in &spec.edges {
                if *s == i {
                    stack.push(*d);
                }
            }
        }
    }
    seen
}

fn panthera_heap() -> (Heap, GcCoordinator) {
    let heap = Heap::new(
        HeapConfig::panthera(2_000_000, 1.0 / 3.0),
        MemorySystemConfig::with_capacities(700_000, 1_300_000),
    )
    .unwrap();
    (
        heap,
        GcCoordinator::new(Box::new(PantheraPolicy::default())),
    )
}

proptest! {
    /// Minor GC is precise on random graphs: survivors = reachable set,
    /// payloads intact.
    #[test]
    fn minor_gc_is_precise(spec in graph()) {
        let (mut heap, mut gc) = panthera_heap();
        let ids = build(&mut heap, &mut gc, &spec);
        let mut roots = RootSet::new();
        for r in &spec.roots {
            roots.push(ids[*r]);
        }
        gc.minor_gc(&mut heap, &roots);
        let live = reachable(&spec);
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(
                heap.is_live(*id),
                live.contains(&i),
                "object {} liveness wrong", i
            );
            if live.contains(&i) {
                prop_assert_eq!(heap.obj(*id).payload.as_long(), Some(i as i64));
            }
        }
    }

    /// Repeated collections reach a fixed point: after enough minor GCs,
    /// every survivor is in the old generation and stays there.
    #[test]
    fn collections_reach_fixed_point(spec in graph()) {
        let (mut heap, mut gc) = panthera_heap();
        let ids = build(&mut heap, &mut gc, &spec);
        let mut roots = RootSet::new();
        for r in &spec.roots {
            roots.push(ids[*r]);
        }
        for _ in 0..5 {
            gc.minor_gc(&mut heap, &roots);
        }
        let live = reachable(&spec);
        for i in &live {
            prop_assert!(!heap.obj(ids[*i]).in_young(), "survivor {} still young", i);
        }
        // A major GC must not change liveness.
        gc.major_gc(&mut heap, &roots);
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(heap.is_live(*id), live.contains(&i));
        }
    }

    /// Everything reachable from a DRAM-tagged array lands in the DRAM
    /// old space (given room), regardless of graph shape.
    #[test]
    fn tags_reach_the_whole_structure(spec in graph()) {
        let (mut heap, mut gc) = panthera_heap();
        let mut roots = RootSet::new();
        let arr = gc.alloc_rdd_array(&mut heap, &roots, 1, 128, MemTag::Dram);
        roots.push(arr);
        let ids = build(&mut heap, &mut gc, &spec);
        // Link the graph's roots beneath the array.
        for r in &spec.roots {
            heap.push_ref(arr, ids[*r]);
        }
        gc.minor_gc(&mut heap, &roots);
        let dram = heap.old_dram().unwrap();
        for i in reachable(&spec) {
            prop_assert_eq!(heap.obj(ids[i]).tag, MemTag::Dram, "tag missed {}", i);
            prop_assert_eq!(heap.obj(ids[i]).space, mheap::SpaceId::Old(dram));
        }
    }

    /// Remembered-set torture: old arrays accumulate references to young
    /// objects with minor GCs randomly interleaved between the stores.
    /// Every referenced object must survive, land in the array's space
    /// eventually, and the heap must stay structurally sound.
    #[test]
    fn card_logic_survives_random_mutation(
        ops in prop::collection::vec((any::<bool>(), 0usize..4, any::<bool>()), 1..60)
    ) {
        let (mut heap, mut gc) = panthera_heap();
        let mut roots = RootSet::new();
        let tags = [MemTag::Dram, MemTag::Nvm, MemTag::None, MemTag::None];
        let arrays: Vec<ObjId> = (0..4u32)
            .map(|i| {
                let a = gc.alloc_rdd_array(&mut heap, &roots, i, 16, tags[i as usize]);
                roots.push(a);
                a
            })
            .collect();
        let mut stored: Vec<(usize, ObjId, i64)> = Vec::new();
        let mut counter = 0i64;
        for (do_gc, which, double) in ops {
            if do_gc {
                gc.minor_gc(&mut heap, &roots);
                prop_assert!(heap.check_integrity().is_ok());
            } else {
                counter += 1;
                let t = gc.alloc_young(
                    &mut heap,
                    &roots,
                    ObjKind::Tuple,
                    MemTag::None,
                    vec![],
                    Payload::Long(counter),
                );
                heap.push_ref(arrays[which], t);
                stored.push((which, t, counter));
                if double {
                    // Same object referenced from a second array too
                    // (conflict fodder).
                    heap.push_ref(arrays[(which + 1) % 4], t);
                }
            }
        }
        // Drain: everything must settle out of the young generation.
        for _ in 0..5 {
            gc.minor_gc(&mut heap, &roots);
        }
        heap.check_integrity().map_err(TestCaseError::fail)?;
        for (which, t, val) in stored {
            prop_assert!(heap.is_live(t), "array {which}'s element died");
            prop_assert!(!heap.obj(t).in_young(), "element never tenured");
            prop_assert_eq!(heap.obj(t).payload.as_long(), Some(val));
        }
        gc.major_gc(&mut heap, &roots);
        heap.check_integrity().map_err(TestCaseError::fail)?;
    }

    /// The unified DRAM-only heap never produces NVM traffic, whatever the
    /// workload graph.
    #[test]
    fn dram_only_invariant(spec in graph()) {
        let mut cfg = HeapConfig::panthera(2_000_000, 1.0);
        cfg.old_layout = OldGenLayout::Unified(DeviceKind::Dram);
        let mut heap =
            Heap::new(cfg, MemorySystemConfig::with_capacities(2_000_000, 0)).unwrap();
        let mut gc = GcCoordinator::new(Box::new(UnifiedPolicy { label: "dram-only" }));
        let ids = build(&mut heap, &mut gc, &spec);
        let mut roots = RootSet::new();
        for r in &spec.roots {
            roots.push(ids[*r]);
        }
        for _ in 0..4 {
            gc.minor_gc(&mut heap, &roots);
        }
        gc.major_gc(&mut heap, &roots);
        prop_assert_eq!(heap.mem().stats().total_device_bytes(DeviceKind::Nvm), 0);
    }
}
