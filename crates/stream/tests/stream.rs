//! panthera-stream tier-1 contracts:
//!
//! * determinism — a fixed spec seed makes the `StreamReport` bit-identical
//!   across reruns (and, via the perfsuite `.sim` comparison, across host
//!   thread budgets);
//! * crash recovery — a driver crash at any batch boundary replays, from
//!   the seed alone, to the same per-batch latencies and final report;
//! * policy transparency — window outputs are byte-identical under the
//!   static, online, and oracle policies: placement moves bytes, never
//!   answers;
//! * the regret ordering — closing the loop from observed frequencies
//!   beats trusting the static prior;
//! * the event protocol — `BatchStart`/`BatchEnd`/`Watermark`/`Retag`
//!   appear exactly per schedule, with watermarks at batch barriers.

use panthera::obs::{Event, Observer, RingBufferSink};
use panthera::{MemoryMode, SystemConfig, SIM_GB};
use panthera_stream::{RetagPolicy, StreamBuilder, StreamSpec, WindowSpec};
use std::cell::RefCell;
use std::rc::Rc;

fn builder(seed: u64) -> StreamBuilder {
    StreamBuilder::new(StreamSpec::small(seed))
}

#[test]
fn window_outputs_are_identical_under_all_policies() {
    let cmp = builder(7).compare().expect("valid spec");
    assert!(
        cmp.outputs_identical(),
        "placement policy must never change answers"
    );
    let windows = cmp.static_run.window_outputs();
    assert_eq!(windows.len(), 4, "8 batches / tumbling 2 close 4 windows");
    assert_eq!(windows, cmp.online.window_outputs());
    assert_eq!(windows, cmp.oracle.window_outputs());
    // The policies genuinely differ in *behavior*, just not in answers.
    assert!(cmp.online.retags > 0, "the hot set drifts: online must act");
    assert_eq!(cmp.static_run.retags, 0);
}

#[test]
fn policies_are_transparent_under_sliding_windows_too() {
    let mut spec = StreamSpec::small(13);
    spec.window = WindowSpec::Sliding(3);
    let cmp = StreamBuilder::new(spec).compare().expect("valid spec");
    assert!(cmp.outputs_identical());
    assert_eq!(
        cmp.static_run.window_outputs().len(),
        8,
        "one window per batch"
    );
}

#[test]
fn online_regret_is_at_most_static_regret() {
    let cmp = builder(7).compare().expect("valid spec");
    assert!(
        cmp.online_regret_ns() <= cmp.static_regret_ns(),
        "online ({:.3e} ns) must not regret more than static ({:.3e} ns)",
        cmp.online_regret_ns(),
        cmp.static_regret_ns()
    );
    // The clairvoyant baseline must beat the static prior outright.
    assert!(
        cmp.oracle.elapsed_ns <= cmp.static_run.elapsed_ns,
        "oracle ({:.4e} ns) must not lose to static ({:.4e} ns)",
        cmp.oracle.elapsed_ns,
        cmp.static_run.elapsed_ns
    );
}

#[test]
fn stream_report_is_bit_identical_across_reruns() {
    for policy in [
        RetagPolicy::Static,
        RetagPolicy::Online { hysteresis: 1 },
        RetagPolicy::Oracle,
    ] {
        let a = builder(11).policy(policy).run().expect("valid spec");
        let b = builder(11).policy(policy).run().expect("valid spec");
        assert_eq!(
            a.to_json().to_compact(),
            b.to_json().to_compact(),
            "{}: a fixed seed must replay bit-identically",
            policy.label()
        );
    }
}

#[test]
fn crash_at_any_batch_boundary_replays_identically() {
    let b = builder(3).policy(RetagPolicy::Online { hysteresis: 1 });
    let full = b.run().expect("valid spec");
    for crash_after in [1u32, 4, 7] {
        // The "crashed" driver observed a latency prefix...
        let prefix = b.run_prefix(crash_after).expect("valid spec");
        assert_eq!(
            prefix.as_slice(),
            &full.batch_latency_ns[..crash_after as usize],
            "crash after batch {crash_after}: the observed prefix must match"
        );
    }
    // ...and the restarted driver, rebuilt from the seed alone, replays
    // the entire stream to the same report, bit for bit.
    let replay = b.run().expect("valid spec");
    assert_eq!(full.to_json().to_compact(), replay.to_json().to_compact());
}

#[test]
fn batch_events_follow_the_protocol() {
    let ring = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    let mut cfg = SystemConfig::new(MemoryMode::Panthera, 4 * SIM_GB, 1.0 / 3.0);
    cfg.observer = Observer::with_sink(ring.clone());
    let report = builder(7)
        .config(cfg)
        .policy(RetagPolicy::Online { hysteresis: 1 })
        .run()
        .expect("valid spec");

    let ring = ring.borrow();
    let count = |f: &dyn Fn(&Event) -> bool| ring.events().filter(|(_, e)| f(e)).count() as u64;
    let batches = u64::from(report.batches);
    assert_eq!(count(&|e| matches!(e, Event::BatchStart { .. })), batches);
    assert_eq!(count(&|e| matches!(e, Event::BatchEnd { .. })), batches);
    assert_eq!(
        count(&|e| matches!(e, Event::Watermark { .. })),
        u64::from(report.watermarks)
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Retag { .. })),
        u64::from(report.retags)
    );
    assert_eq!(
        count(&|e| matches!(e, Event::RddCall { .. })),
        report.run.monitored_calls,
        "every monitored call surfaces as an RddCall event"
    );

    // Watermarks are virtual-time barriers: batch b's watermark carries
    // the exclusive event-time bound (b+1) * ticks and is emitted before
    // any batch b+1 event; BatchEnd latencies match the report.
    let mut seen_batch = 0u32;
    let mut latencies = Vec::new();
    let mut prev_t = f64::NEG_INFINITY;
    for (t, e) in ring.events() {
        assert!(*t >= prev_t, "event times must be monotone");
        prev_t = *t;
        match e {
            Event::BatchStart { batch } => seen_batch = *batch,
            Event::BatchEnd { batch, latency_ns } => {
                assert_eq!(*batch, seen_batch);
                latencies.push(*latency_ns);
            }
            Event::Watermark { batch, event_time } => {
                assert_eq!(*batch, seen_batch, "watermark emitted at its own barrier");
                assert_eq!(*event_time, u64::from(batch + 1) * 1_000);
            }
            _ => {}
        }
    }
    assert_eq!(latencies, report.batch_latency_ns);
}

#[test]
fn online_policy_requires_a_semantic_mode() {
    let cfg = SystemConfig::new(MemoryMode::Unmanaged, 4 * SIM_GB, 1.0 / 3.0);
    let err = builder(7)
        .config(cfg.clone())
        .policy(RetagPolicy::Online { hysteresis: 1 })
        .run()
        .expect_err("re-tagging without tagged spaces must be rejected");
    assert!(err.message().contains("unmanaged"), "got: {err}");
    // The static policy is mode-agnostic: it never re-tags.
    let report = builder(7)
        .config(cfg)
        .policy(RetagPolicy::Static)
        .run()
        .expect("static streaming works in any mode");
    assert_eq!(report.retags, 0);
    assert_eq!(report.batches, 8);
}

#[test]
fn hysteresis_suppresses_single_batch_noise() {
    // A persistent disagreement (a cold dataset with a DRAM prior) can
    // accumulate across every boundary, so only hysteresis beyond the
    // boundary count is fully inert — but it must be *exactly* inert.
    let spec = StreamSpec::small(7);
    let batches = spec.batches;
    let calm = StreamBuilder::new(spec)
        .policy(RetagPolicy::Online {
            hysteresis: batches,
        })
        .run()
        .expect("valid spec");
    assert_eq!(
        calm.retags, 0,
        "hysteresis beyond the boundary count is inert"
    );
    let eager = builder(7)
        .policy(RetagPolicy::Online { hysteresis: 1 })
        .run()
        .expect("valid spec");
    assert!(eager.retags > 0);
}
