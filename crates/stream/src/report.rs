//! Streaming run reports: per-batch latencies, window-output digests,
//! and the regret comparison across re-tagging policies.

use panthera::RunReport;
use sparklet::ActionResult;

/// FNV-1a over a byte stream — the digest primitive for window outputs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Fold one payload into the digest, structurally.
fn digest_payload(h: &mut Fnv, p: &mheap::Payload) {
    use mheap::Payload::*;
    match p {
        Unit => h.write_u64(0),
        Long(v) => {
            h.write_u64(1);
            h.write_u64(*v as u64);
        }
        Double(v) => {
            h.write_u64(2);
            h.write_u64(v.to_bits());
        }
        Text { sym, len } => {
            h.write_u64(3);
            h.write_u64(*sym);
            h.write_u64(u64::from(*len));
        }
        Pair(a, b) => {
            h.write_u64(4);
            digest_payload(h, a);
            digest_payload(h, b);
        }
        Longs(vs) => {
            h.write_u64(5);
            for v in vs.iter() {
                h.write_u64(*v as u64);
            }
        }
        other => {
            // Remaining shapes (float vectors, ...) never appear in the
            // stream pipeline; hash their debug form so nothing is silent.
            h.write_u64(6);
            h.write(format!("{other:?}").as_bytes());
        }
    }
}

/// A deterministic 64-bit digest of one action result.
pub fn digest_result(r: &ActionResult) -> u64 {
    let mut h = Fnv::new();
    match r {
        ActionResult::Count(n) => {
            h.write_u64(10);
            h.write_u64(*n);
        }
        ActionResult::Collected(vs) => {
            h.write_u64(11);
            for v in vs {
                digest_payload(&mut h, v);
            }
        }
        ActionResult::Reduced(v) => {
            h.write_u64(12);
            if let Some(v) = v {
                digest_payload(&mut h, v);
            }
        }
    }
    h.finish()
}

/// The p-th quantile of a latency vector (nearest-rank on a sorted copy,
/// matching the repo's pause-histogram convention).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Everything one streaming run produced: per-batch latencies, the
/// policy's re-tag activity, and digests of every action result.
///
/// With a fixed [`crate::StreamSpec`] seed the report is **bit-identical**
/// across host-thread budgets and across crash/replay runs — the
/// simulated clock is the only clock in here.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Workload name from the spec.
    pub workload: String,
    /// Policy label (`"static"`, `"online"`, `"oracle"`).
    pub policy: String,
    /// Batches driven.
    pub batches: u32,
    /// Virtual latency of each batch, in nanoseconds: barrier-to-barrier
    /// mutator + GC time, excluding the inter-batch policy work.
    pub batch_latency_ns: Vec<f64>,
    /// Total virtual time of the run, including inter-batch re-tag
    /// migrations — the quantity regret is computed on.
    pub elapsed_ns: f64,
    /// Watermarks emitted.
    pub watermarks: u32,
    /// Re-tag decisions the policy applied.
    pub retags: u32,
    /// RDD arrays the collector migrated across devices.
    pub migrations: u64,
    /// Fraction of device traffic served by DRAM (the DRAM hit ratio).
    pub dram_byte_frac: f64,
    /// `(action variable, digest)` for every action, in program order.
    /// Counts digest their value; collects digest their full contents.
    pub outputs: Vec<(String, u64)>,
    /// Digest over all `outputs` — the one-word answer identity.
    pub outputs_digest: u64,
    /// The underlying end-of-run report.
    pub run: RunReport,
}

impl StreamReport {
    /// The q-quantile (0..=1) of the per-batch latencies.
    pub fn latency_quantile_ns(&self, q: f64) -> f64 {
        let mut sorted = self.batch_latency_ns.clone();
        sorted.sort_by(f64::total_cmp);
        quantile(&sorted, q)
    }

    /// Digests of the window aggregation outputs only (names starting
    /// with `win`), in emission order.
    pub fn window_outputs(&self) -> Vec<(String, u64)> {
        self.outputs
            .iter()
            .filter(|(name, _)| name.starts_with("win"))
            .cloned()
            .collect()
    }

    /// Deterministic JSON for files and cross-run comparison.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("policy", Json::Str(self.policy.clone())),
            ("batches", Json::UInt(u64::from(self.batches))),
            ("elapsed_ns", Json::Num(self.elapsed_ns)),
            (
                "latency_ns",
                Json::obj(vec![
                    ("p50", Json::Num(self.latency_quantile_ns(0.50))),
                    ("p90", Json::Num(self.latency_quantile_ns(0.90))),
                    ("p99", Json::Num(self.latency_quantile_ns(0.99))),
                ]),
            ),
            (
                "batch_latency_ns",
                Json::Arr(
                    self.batch_latency_ns
                        .iter()
                        .map(|l| Json::Num(*l))
                        .collect(),
                ),
            ),
            ("watermarks", Json::UInt(u64::from(self.watermarks))),
            ("retags", Json::UInt(u64::from(self.retags))),
            ("migrations", Json::UInt(self.migrations)),
            ("dram_byte_frac", Json::Num(self.dram_byte_frac)),
            (
                "outputs",
                Json::Obj(
                    self.outputs
                        .iter()
                        .map(|(name, digest)| (name.clone(), Json::UInt(*digest)))
                        .collect(),
                ),
            ),
            ("outputs_digest", Json::UInt(self.outputs_digest)),
            ("run", self.run.to_json()),
        ])
    }
}

/// The three policies run over the same spec, for regret analysis.
///
/// Regret is each policy's total virtual time minus the oracle's — the
/// cost of not knowing the future. The oracle re-tags with perfect
/// foresight (a two-pass replay), so it lower-bounds what any re-tagging
/// policy can achieve on this stream; `online` closing most of the
/// static policy's regret is the tentpole claim of DESIGN.md §14.
#[derive(Debug, Clone)]
pub struct StreamComparison {
    /// Static tags only (the analysis prior, never revised).
    pub static_run: StreamReport,
    /// Online re-tagging from observed per-batch access deltas.
    pub online: StreamReport,
    /// Perfect-foresight re-tagging from a recorded first pass.
    pub oracle: StreamReport,
}

impl StreamComparison {
    /// The static policy's regret over the oracle, in nanoseconds.
    pub fn static_regret_ns(&self) -> f64 {
        self.static_run.elapsed_ns - self.oracle.elapsed_ns
    }

    /// The online policy's regret over the oracle, in nanoseconds.
    pub fn online_regret_ns(&self) -> f64 {
        self.online.elapsed_ns - self.oracle.elapsed_ns
    }

    /// Whether all three policies produced byte-identical action outputs
    /// — the policy transparency invariant (placement moves bytes, never
    /// answers).
    pub fn outputs_identical(&self) -> bool {
        self.static_run.outputs == self.online.outputs
            && self.static_run.outputs == self.oracle.outputs
    }

    /// Deterministic JSON: the three reports plus the regret summary.
    pub fn to_json(&self) -> obs::Json {
        use obs::Json;
        Json::obj(vec![
            ("static", self.static_run.to_json()),
            ("online", self.online.to_json()),
            ("oracle", self.oracle.to_json()),
            (
                "regret_ns",
                Json::obj(vec![
                    ("static", Json::Num(self.static_regret_ns())),
                    ("online", Json::Num(self.online_regret_ns())),
                ]),
            ),
            ("outputs_identical", Json::Bool(self.outputs_identical())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mheap::Payload;

    #[test]
    fn digests_distinguish_results() {
        let a = digest_result(&ActionResult::Count(3));
        let b = digest_result(&ActionResult::Count(4));
        assert_ne!(a, b);
        let c = digest_result(&ActionResult::Collected(vec![Payload::keyed(
            1,
            Payload::Long(2),
        )]));
        let d = digest_result(&ActionResult::Collected(vec![Payload::keyed(
            1,
            Payload::Long(3),
        )]));
        assert_ne!(c, d);
        assert_eq!(
            c,
            digest_result(&ActionResult::Collected(vec![Payload::keyed(
                1,
                Payload::Long(2),
            )]))
        );
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 2.0);
        assert_eq!(quantile(&v, 0.99), 4.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }
}
