//! Stream workload specification: a seeded, fully deterministic
//! description of a micro-batch pipeline.
//!
//! Everything the driver runs — source records, drift schedule, window
//! shape — derives from this struct and nothing else, so rebuilding a
//! [`StreamSpec`] from the same fields replays the exact same stream.
//! That property is what makes batch-boundary crash recovery a pure
//! replay (DESIGN.md §14) and what lets the fuzzer compare policies on
//! randomly drawn specs.

/// Window shape over micro-batch panes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowSpec {
    /// Non-overlapping windows of `w` batches: a window closes (and its
    /// panes unpersist) every `w`-th batch.
    Tumbling(u32),
    /// Overlapping windows of the last `w` batches, emitted every batch;
    /// the pane sliding out of range unpersists.
    Sliding(u32),
}

impl WindowSpec {
    /// The window width in batches.
    pub fn width(self) -> u32 {
        match self {
            WindowSpec::Tumbling(w) | WindowSpec::Sliding(w) => w,
        }
    }

    /// Whether a window closes at the end of 0-based batch `b`.
    pub fn closes_at(self, b: u32) -> bool {
        match self {
            WindowSpec::Tumbling(w) => (b + 1).is_multiple_of(w),
            WindowSpec::Sliding(_) => true,
        }
    }
}

/// A seeded micro-batch streaming workload over `datasets` resident
/// cached datasets, with a drifting hot set.
///
/// Per batch, the pipeline ingests one source pane, joins it against the
/// batch's *hot* dataset (a stream-static join), folds the pane into a
/// running `reduceByKey` state RDD, and emits windowed aggregations per
/// [`WindowSpec`]. The hot dataset drifts every [`StreamSpec::drift_period`]
/// batches through a seeded permutation — so any fixed placement of the
/// datasets is wrong for part of the stream, which is exactly the gap an
/// online re-tagging policy can close.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Workload name (becomes the program / report name).
    pub name: String,
    /// Seed for source data and the drift permutation.
    pub seed: u64,
    /// Number of micro-batches.
    pub batches: u32,
    /// Number of resident cached datasets (the re-tag targets).
    pub datasets: u32,
    /// Records per resident dataset.
    pub dataset_records: usize,
    /// Records per source pane (one pane per batch).
    pub pane_records: usize,
    /// Distinct join/aggregation keys.
    pub key_space: i64,
    /// Batches between hot-set drifts.
    pub drift_period: u32,
    /// Window shape.
    pub window: WindowSpec,
    /// Monitored accesses to the hot dataset per batch (one is the join;
    /// the rest are count actions).
    pub accesses_per_batch: u32,
    /// Virtual event-time ticks covered by one batch; the watermark after
    /// batch `b` is `(b + 1) * event_time_per_batch` (exclusive).
    pub event_time_per_batch: u64,
    /// Per-batch call-count delta at or above which a dataset is
    /// considered hot (wants DRAM) by the online and oracle policies.
    pub hot_threshold: u64,
}

impl StreamSpec {
    /// A small, fast spec for tests: 8 batches over 4 datasets with a
    /// tumbling window of 2 and a drift every 2 batches.
    pub fn small(seed: u64) -> StreamSpec {
        StreamSpec {
            name: "stream-small".to_string(),
            seed,
            batches: 8,
            datasets: 4,
            dataset_records: 2048,
            pane_records: 256,
            key_space: 128,
            drift_period: 2,
            window: WindowSpec::Tumbling(2),
            accesses_per_batch: 4,
            event_time_per_batch: 1_000,
            hot_threshold: 2,
        }
    }

    /// The benchmark-sized spec: longer stream, bigger datasets, sliding
    /// window — enough resident bytes that the datasets cannot all sit in
    /// DRAM, so placement genuinely matters.
    pub fn perf(seed: u64) -> StreamSpec {
        StreamSpec {
            name: "stream-perf".to_string(),
            seed,
            batches: 16,
            datasets: 6,
            dataset_records: 8192,
            pane_records: 512,
            key_space: 256,
            drift_period: 2,
            window: WindowSpec::Sliding(3),
            accesses_per_batch: 6,
            event_time_per_batch: 1_000,
            hot_threshold: 2,
        }
    }

    /// The 0-based hot dataset index for each batch: the seeded drift
    /// permutation advanced every [`StreamSpec::drift_period`] batches.
    pub fn hot_schedule(&self) -> Vec<u32> {
        let k = self.datasets.max(1);
        // Seeded Fisher-Yates over 0..k (SplitMix64, dependency-free).
        let mut perm: Vec<u32> = (0..k).collect();
        let mut x = self.seed ^ 0x5157_4e44_5249_4654; // "drift" domain
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..perm.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let period = self.drift_period.max(1);
        (0..self.batches)
            .map(|b| perm[((b / period) % k) as usize])
            .collect()
    }

    /// Check the spec's structural constraints.
    ///
    /// # Errors
    ///
    /// A message naming the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.batches == 0 {
            return Err("a stream needs at least one batch".to_string());
        }
        if self.datasets == 0 {
            return Err("a stream needs at least one resident dataset".to_string());
        }
        if self.window.width() == 0 {
            return Err("window width must be at least one batch".to_string());
        }
        if self.accesses_per_batch == 0 {
            return Err("the hot dataset must be accessed at least once per batch".to_string());
        }
        if self.key_space <= 0 {
            return Err("key space must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_schedule_is_deterministic_and_drifts() {
        let spec = StreamSpec::small(11);
        let a = spec.hot_schedule();
        let b = spec.hot_schedule();
        assert_eq!(a, b, "schedule must be a pure function of the spec");
        assert_eq!(a.len(), spec.batches as usize);
        assert!(
            a.windows(2).any(|w| w[0] != w[1]),
            "the hot set must actually drift: {a:?}"
        );
        assert!(a.iter().all(|h| *h < spec.datasets));
        // Consecutive batches within one drift period share the hot index.
        for (b, h) in a.iter().enumerate() {
            if b % spec.drift_period as usize != 0 {
                assert_eq!(*h, a[b - 1], "drift only at period boundaries");
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..16 {
            distinct.insert(StreamSpec::small(seed).hot_schedule());
        }
        assert!(distinct.len() > 1, "seed must reach the drift permutation");
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let mut s = StreamSpec::small(1);
        s.batches = 0;
        assert!(s.validate().is_err());
        let mut s = StreamSpec::small(1);
        s.window = WindowSpec::Tumbling(0);
        assert!(s.validate().is_err());
        assert!(StreamSpec::small(1).validate().is_ok());
        assert!(StreamSpec::perf(1).validate().is_ok());
    }
}
