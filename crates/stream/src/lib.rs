//! panthera-stream: deterministic micro-batch streaming over the
//! Panthera runtime, with the migration-policy loop closed online.
//!
//! The paper's static analysis guesses each RDD's placement once, before
//! the program runs. A streaming job breaks that premise: the hot set
//! *drifts*, so any fixed placement is wrong for part of the stream. This
//! crate runs seeded micro-batch pipelines — tumbling/sliding windowed
//! aggregations, stream-static joins, cross-batch `reduceByKey` state —
//! and feeds the observability layer's per-RDD access frequencies back
//! into the collector's migration machinery between batches:
//!
//! * [`StreamSpec`] describes a seeded stream (sources, drift, window);
//! * [`StreamBuilder`] drives it batch by batch over
//!   [`panthera::SingleCursor`], emitting `BatchStart` / `BatchEnd` /
//!   `Watermark` / `Retag` events;
//! * [`RetagPolicy`] picks who controls placement: the static prior, an
//!   online policy with hysteresis, or a two-pass oracle (the regret
//!   lower bound);
//! * [`StreamReport`] / [`StreamComparison`] carry per-batch latency
//!   quantiles, window-output digests, and regret.
//!
//! Three invariants, all pinned by tests: a fixed spec seed makes the
//! report **bit-identical** across host-thread budgets and crash/replay
//! runs; watermarks are virtual-time barriers (batch `b`'s watermark is
//! emitted exactly at its boundary, before any batch `b+1` work); and
//! policies move bytes, never answers — window outputs are byte-identical
//! under all three policies.

#![deny(missing_docs)]

mod driver;
mod program;
mod report;
mod spec;

pub use driver::{RetagPolicy, StreamBuilder};
pub use program::{build_stream_program, StreamProgram};
pub use report::{digest_result, StreamComparison, StreamReport};
pub use spec::{StreamSpec, WindowSpec};
