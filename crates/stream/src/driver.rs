//! The micro-batch driver: step a [`SingleCursor`] batch by batch,
//! observe access frequencies between batches, and close the migration
//! policy loop.
//!
//! The driver never touches the simulated clock directly. Batches run
//! through the engine's ordinary statement stages; at each batch barrier
//! the driver reads the [`obs::MetricsAggregator`] that rode along as an
//! event sink, computes the per-RDD call delta for the batch, and — under
//! the online or oracle policy — pins tag overrides on the collector and
//! forces a major collection so the migration happens *between* batches.
//! The forced collection is the only way a policy affects virtual time;
//! observation itself charges nothing (the observe-never-charge rule).

use crate::program::{build_stream_program, StreamProgram};
use crate::report::{digest_result, Fnv, StreamComparison, StreamReport};
use crate::spec::StreamSpec;
use mheap::MemTag;
use obs::{Event, Mem, MetricsAggregator, Observer};
use panthera::{
    to_mem_tag, ConfigError, MemoryMode, RunReport, SingleCursor, SystemConfig, SIM_GB,
};
use panthera_analysis::{analyze, InstrumentationPlan};
use sparklang::ast::MemoryTag;
use sparklet::{ActionResult, EngineConfig, MemoryRuntime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// How the driver revises RDD placement between batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetagPolicy {
    /// Trust the static analysis tags for the whole stream; the collector
    /// still migrates on its own hot/cold thresholds, but nothing feeds
    /// observed frequencies back.
    Static,
    /// Re-tag from observed per-batch access deltas: a dataset whose
    /// delta crosses [`StreamSpec::hot_threshold`] wants DRAM, others
    /// want NVM. A change is applied only after `hysteresis` consecutive
    /// boundaries agree, so one noisy batch cannot thrash placements.
    Online {
        /// Consecutive disagreeing boundaries required before a re-tag.
        hysteresis: u32,
    },
    /// Perfect foresight: replay a recorded first pass and re-tag for the
    /// *next* batch's observed hot set at every boundary (and pre-tag the
    /// initial placement). The regret lower bound.
    Oracle,
}

impl RetagPolicy {
    /// The report label.
    pub fn label(&self) -> &'static str {
        match self {
            RetagPolicy::Static => "static",
            RetagPolicy::Online { .. } => "online",
            RetagPolicy::Oracle => "oracle",
        }
    }
}

impl Default for RetagPolicy {
    fn default() -> Self {
        RetagPolicy::Online { hysteresis: 1 }
    }
}

/// Internal drive mode: the oracle carries its precomputed schedule.
enum Mode<'a> {
    Static,
    Online { hysteresis: u32 },
    Oracle { schedule: &'a [Vec<MemTag>] },
}

/// Raw output of one drive.
struct DriveOutput {
    latencies: Vec<f64>,
    watermarks: u32,
    retags: u32,
    /// Per batch, per dataset index: monitored-call delta for the batch.
    deltas: Vec<Vec<u64>>,
    /// Present only when the stream ran to completion.
    finished: Option<(RunReport, Vec<(String, ActionResult)>)>,
}

/// Builder for streaming runs — the streaming sibling of
/// [`panthera::RunBuilder`].
///
/// ```
/// use panthera_stream::{RetagPolicy, StreamBuilder, StreamSpec};
///
/// let report = StreamBuilder::new(StreamSpec::small(7))
///     .policy(RetagPolicy::Online { hysteresis: 1 })
///     .run()
///     .expect("valid spec and config");
/// assert_eq!(report.batches, 8);
/// ```
#[derive(Debug, Clone)]
pub struct StreamBuilder {
    spec: StreamSpec,
    config: SystemConfig,
    policy: RetagPolicy,
}

impl StreamBuilder {
    /// A builder over `spec` with the default Panthera configuration: a
    /// heap small enough that the resident datasets contend for DRAM.
    pub fn new(spec: StreamSpec) -> StreamBuilder {
        StreamBuilder {
            spec,
            config: SystemConfig::new(MemoryMode::Panthera, 4 * SIM_GB, 1.0 / 3.0),
            policy: RetagPolicy::default(),
        }
    }

    /// Replace the system configuration. Any observer already attached is
    /// kept; the driver's metrics sink rides alongside it.
    pub fn config(mut self, config: SystemConfig) -> StreamBuilder {
        self.config = config;
        self
    }

    /// Select the re-tagging policy.
    pub fn policy(mut self, policy: RetagPolicy) -> StreamBuilder {
        self.policy = policy;
        self
    }

    /// Run the stream to completion under the selected policy.
    ///
    /// # Errors
    ///
    /// Spec or configuration constraint violations; the online and oracle
    /// policies additionally require a semantic (Panthera) memory mode,
    /// since re-tagging is meaningless without tagged spaces.
    pub fn run(&self) -> Result<StreamReport, ConfigError> {
        match self.policy {
            RetagPolicy::Static => {
                let out = self.drive(Mode::Static, None)?;
                Ok(self.make_report("static", out))
            }
            RetagPolicy::Online { hysteresis } => {
                let out = self.drive(Mode::Online { hysteresis }, None)?;
                Ok(self.make_report("online", out))
            }
            RetagPolicy::Oracle => {
                let schedule = self.oracle_schedule()?;
                let out = self.drive(
                    Mode::Oracle {
                        schedule: &schedule,
                    },
                    None,
                )?;
                Ok(self.make_report("oracle", out))
            }
        }
    }

    /// Drive only the first `batches` batches, then abandon the run — a
    /// driver crash at a batch boundary. Returns the per-batch latencies
    /// observed before the crash.
    ///
    /// Recovery is a pure replay: rebuild the same [`StreamSpec`] and
    /// [`StreamBuilder::run`] again — sources are seeded, so the replay's
    /// latency prefix is bit-identical to the crashed run's (pinned by
    /// this crate's tests).
    ///
    /// # Errors
    ///
    /// Same constraints as [`StreamBuilder::run`].
    pub fn run_prefix(&self, batches: u32) -> Result<Vec<f64>, ConfigError> {
        let out = match self.policy {
            RetagPolicy::Static => self.drive(Mode::Static, Some(batches))?,
            RetagPolicy::Online { hysteresis } => {
                self.drive(Mode::Online { hysteresis }, Some(batches))?
            }
            RetagPolicy::Oracle => {
                let schedule = self.oracle_schedule()?;
                self.drive(
                    Mode::Oracle {
                        schedule: &schedule,
                    },
                    Some(batches),
                )?
            }
        };
        Ok(out.latencies)
    }

    /// Run all three policies over the same spec and configuration for
    /// regret analysis. The static pass doubles as the oracle's recording
    /// pass, so this costs three runs, not four.
    ///
    /// # Errors
    ///
    /// Same constraints as [`StreamBuilder::run`].
    pub fn compare(&self) -> Result<StreamComparison, ConfigError> {
        let static_out = self.drive(Mode::Static, None)?;
        let schedule = schedule_from_deltas(&static_out.deltas, self.spec.hot_threshold);
        let online_out = self.drive(
            Mode::Online {
                hysteresis: match self.policy {
                    RetagPolicy::Online { hysteresis } => hysteresis,
                    _ => 1,
                },
            },
            None,
        )?;
        let oracle_out = self.drive(
            Mode::Oracle {
                schedule: &schedule,
            },
            None,
        )?;
        Ok(StreamComparison {
            static_run: self.make_report("static", static_out),
            online: self.make_report("online", online_out),
            oracle: self.make_report("oracle", oracle_out),
        })
    }

    /// The oracle's desired-tag schedule: record a static pass, then map
    /// each batch's observed deltas through the hot threshold.
    fn oracle_schedule(&self) -> Result<Vec<Vec<MemTag>>, ConfigError> {
        let pass1 = self.drive(Mode::Static, None)?;
        Ok(schedule_from_deltas(&pass1.deltas, self.spec.hot_threshold))
    }

    fn make_report(&self, policy: &str, out: DriveOutput) -> StreamReport {
        let (run, results) = out
            .finished
            .expect("make_report is only called on completed runs");
        let outputs: Vec<(String, u64)> = results
            .iter()
            .map(|(name, r)| (name.clone(), digest_result(r)))
            .collect();
        let mut h = Fnv::new();
        for (name, digest) in &outputs {
            h.write(name.as_bytes());
            h.write_u64(*digest);
        }
        let dram = run.device_bytes[0] as f64;
        let nvm = run.device_bytes[1] as f64;
        StreamReport {
            workload: self.spec.name.clone(),
            policy: policy.to_string(),
            batches: self.spec.batches,
            batch_latency_ns: out.latencies,
            elapsed_ns: run.elapsed_s * 1e9,
            watermarks: out.watermarks,
            retags: out.retags,
            migrations: run.gc.rdds_migrated,
            dram_byte_frac: if dram + nvm > 0.0 {
                dram / (dram + nvm)
            } else {
                0.0
            },
            outputs_digest: h.finish(),
            outputs,
            run,
        }
    }

    /// The batch loop. `stop_after` simulates a driver crash: drive that
    /// many batches, then abandon the cursor without finishing.
    fn drive(&self, mode: Mode<'_>, stop_after: Option<u32>) -> Result<DriveOutput, ConfigError> {
        self.spec.validate().map_err(ConfigError::new)?;
        if !self.config.mode.is_semantic() && !matches!(mode, Mode::Static) {
            return Err(ConfigError::new(format!(
                "the {} memory mode has no tagged spaces; online/oracle re-tagging needs \
                 MemoryMode::Panthera",
                self.config.mode.label()
            )));
        }

        let StreamProgram {
            program,
            fns,
            data,
            boundaries,
            datasets,
            windows: _,
            hot: _,
        } = build_stream_program(&self.spec);

        // The metrics sink rides alongside whatever the caller attached;
        // reading it between batches is how observed frequencies feed
        // back without charging simulated time.
        let metrics = Rc::new(RefCell::new(MetricsAggregator::new()));
        let mut config = self.config.clone();
        if !config.observer.enabled() {
            config.observer = Observer::enabled_empty();
        }
        config.observer.attach(metrics.clone());

        let mut plan = if config.mode.is_semantic() {
            analyze(&program).plan
        } else {
            InstrumentationPlan::default()
        };
        // Each policy starts from the static priors.
        let mut belief: Vec<MemTag> = datasets
            .iter()
            .map(|var| {
                to_mem_tag(
                    plan.sites
                        .values()
                        .find(|s| s.var == *var)
                        .and_then(|s| s.tag),
                )
            })
            .collect();
        // The oracle's foresight edge at batch 0: promote the initial hot
        // set in the plan so it materializes straight into DRAM. Cold
        // datasets keep their prior — being *born* in NVM means paying
        // slow writes for the whole prologue, which costs more than one
        // demotion at the first boundary (measured, not guessed).
        if let Mode::Oracle { schedule } = &mode {
            for (i, var) in datasets.iter().enumerate() {
                if schedule[0][i] == MemTag::Dram && belief[i] != MemTag::Dram {
                    plan.override_tag(*var, Some(memory_tag(MemTag::Dram)));
                    belief[i] = MemTag::Dram;
                }
            }
        }

        let mut cursor = SingleCursor::start_with_plan(
            program,
            fns,
            data,
            &config,
            EngineConfig::default(),
            plan,
        )?;

        let end = stop_after
            .unwrap_or(self.spec.batches)
            .min(self.spec.batches);
        let mut out = DriveOutput {
            latencies: Vec::with_capacity(end as usize),
            watermarks: 0,
            retags: 0,
            deltas: Vec::with_capacity(end as usize),
            finished: None,
        };
        let mut pending = vec![0u32; datasets.len()];
        let mut baseline: BTreeMap<u32, u64> = BTreeMap::new();
        let mut dataset_ids: Vec<u32> = Vec::new();
        let mut taken = 0usize;
        let mut t_start = cursor.now_ns();
        emit(&cursor, &Event::BatchStart { batch: 0 });

        for b in 0..end {
            while taken < boundaries[b as usize] {
                assert!(cursor.step(), "boundary table exceeds the schedule");
                taken += 1;
            }

            // --- batch barrier ------------------------------------------
            let t_end = cursor.now_ns();
            out.latencies.push(t_end - t_start);
            emit(
                &cursor,
                &Event::BatchEnd {
                    batch: b,
                    latency_ns: t_end - t_start,
                },
            );
            if self.spec.window.closes_at(b) {
                out.watermarks += 1;
                emit(
                    &cursor,
                    &Event::Watermark {
                        batch: b,
                        event_time: u64::from(b + 1) * self.spec.event_time_per_batch,
                    },
                );
            }

            // Resolve the resident datasets' runtime RDD ids once (their
            // bind statements all sit in batch 0's prologue).
            if dataset_ids.is_empty() {
                dataset_ids = resolve_dataset_ids(&cursor, datasets.len());
            }

            // Observed per-batch access deltas, from the cumulative
            // aggregator counters.
            let calls = metrics.borrow().rdd_calls().clone();
            let delta = MetricsAggregator::rdd_call_delta(&calls, &baseline);
            baseline = calls;
            let batch_delta: Vec<u64> = dataset_ids
                .iter()
                .map(|id| delta.get(id).copied().unwrap_or(0))
                .collect();
            out.deltas.push(batch_delta.clone());

            // --- policy: revise placement for the batches ahead ---------
            if b + 1 < end {
                let mut changed = false;
                match &mode {
                    Mode::Static => {}
                    Mode::Online { hysteresis } => {
                        for i in 0..datasets.len() {
                            let desired = if batch_delta[i] >= self.spec.hot_threshold {
                                MemTag::Dram
                            } else {
                                MemTag::Nvm
                            };
                            if desired == belief[i] {
                                pending[i] = 0;
                                continue;
                            }
                            pending[i] += 1;
                            if pending[i] >= *hysteresis {
                                retag(&mut cursor, dataset_ids[i], belief[i], desired);
                                belief[i] = desired;
                                pending[i] = 0;
                                out.retags += 1;
                                changed = true;
                            }
                        }
                    }
                    Mode::Oracle { schedule } => {
                        let next = &schedule[b as usize + 1];
                        for i in 0..datasets.len() {
                            if next[i] != belief[i] {
                                retag(&mut cursor, dataset_ids[i], belief[i], next[i]);
                                belief[i] = next[i];
                                out.retags += 1;
                                changed = true;
                            }
                        }
                    }
                }
                if changed {
                    // Apply the new placement now, between batches, so the
                    // next batch's reads hit the right device.
                    cursor.force_major();
                }
                t_start = cursor.now_ns();
                emit(&cursor, &Event::BatchStart { batch: b + 1 });
            }
        }

        if end == self.spec.batches {
            assert!(
                cursor.is_done(),
                "the last batch boundary must be the end of the schedule"
            );
            let (report, outcome) = cursor.finish();
            out.finished = Some((report, outcome.results));
        }
        Ok(out)
    }
}

/// Emit one driver event at the cursor's current virtual time.
fn emit(cursor: &SingleCursor, event: &Event) {
    let observer = cursor.runtime().heap().observer();
    if observer.enabled() {
        observer.emit(cursor.now_ns(), event);
    }
}

/// Pin a tag override on the collector and surface it as a `Retag` event.
fn retag(cursor: &mut SingleCursor, rdd_id: u32, from: MemTag, to: MemTag) {
    emit(
        cursor,
        &Event::Retag {
            rdd: rdd_id,
            from: mem_of(from),
            to: mem_of(to),
        },
    );
    cursor.runtime_mut().gc_mut().set_tag_override(rdd_id, to);
}

/// The device a tag resolves to (untagged objects promote to NVM).
fn mem_of(tag: MemTag) -> Mem {
    match tag {
        MemTag::Dram => Mem::Dram,
        MemTag::Nvm | MemTag::None => Mem::Nvm,
    }
}

fn memory_tag(tag: MemTag) -> MemoryTag {
    match tag {
        MemTag::Dram => MemoryTag::Dram,
        MemTag::Nvm | MemTag::None => MemoryTag::Nvm,
    }
}

/// Map a pass's per-batch deltas to the tags a clairvoyant policy wants.
fn schedule_from_deltas(deltas: &[Vec<u64>], hot_threshold: u64) -> Vec<Vec<MemTag>> {
    deltas
        .iter()
        .map(|batch| {
            batch
                .iter()
                .map(|d| {
                    if *d >= hot_threshold {
                        MemTag::Dram
                    } else {
                        MemTag::Nvm
                    }
                })
                .collect()
        })
        .collect()
}

/// Find the runtime RDD id of each resident dataset by its bind label.
fn resolve_dataset_ids(cursor: &SingleCursor, k: usize) -> Vec<u32> {
    let rdds = cursor.rdds();
    (0..k)
        .map(|i| {
            let name = format!("d{i}");
            rdds.iter()
                .position(|n| n.label.as_deref() == Some(name.as_str()))
                .unwrap_or_else(|| panic!("resident dataset {name} has no runtime RDD"))
                as u32
        })
        .collect()
}
