//! Unrolled micro-batch program construction.
//!
//! A streaming run is one ordinary [`sparklang`] program: the resident
//! datasets bind and persist up front, then every micro-batch contributes
//! a fixed block of statements (ingest pane, stream-static join, state
//! update, window emission). Because the program contains no loops, the
//! flattened [`panthera::SingleCursor`] schedule is one step per
//! statement, and the cumulative statement count at the end of each
//! batch's block *is* the batch boundary — the virtual-time barrier at
//! which the driver emits watermarks and the policy re-tags.

use crate::spec::{StreamSpec, WindowSpec};
use mheap::Payload;
use sparklang::{ActionKind, FnTable, Program, ProgramBuilder, StorageLevel, VarId};
use sparklet::DataRegistry;
use std::collections::VecDeque;

/// A built stream: the unrolled program plus the bookkeeping the driver
/// needs to find batch boundaries and the policy's re-tag targets.
pub struct StreamProgram {
    /// The unrolled program (no loops: one cursor step per statement).
    pub program: Program,
    /// The user functions (ingest map, sum reduce).
    pub fns: FnTable,
    /// Source data for the resident datasets and every batch pane.
    pub data: DataRegistry,
    /// Cumulative statement count at the end of each batch's block;
    /// `boundaries[b]` is the cursor position of batch `b`'s barrier and
    /// `boundaries.last()` equals the program's statement count.
    pub boundaries: Vec<usize>,
    /// The resident dataset variables `d0..dK-1`, in index order — the
    /// only RDDs a re-tagging policy considers.
    pub datasets: Vec<VarId>,
    /// Variable names of the window aggregation outputs, in emission
    /// order (`win{b}` for each closing batch `b`).
    pub windows: Vec<String>,
    /// The hot dataset index per batch (from [`StreamSpec::hot_schedule`]).
    pub hot: Vec<u32>,
}

/// SplitMix64 — the repo's standard dependency-free generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic keyed records: uniform keys over the spec's key space,
/// small integer values.
fn keyed_records(n: usize, key_space: i64, seed: u64) -> Vec<Payload> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            let k = (splitmix(&mut x) % key_space as u64) as i64;
            let v = (splitmix(&mut x) & 0xff) as i64;
            Payload::keyed(k, Payload::Long(v))
        })
        .collect()
}

/// Build the unrolled program, its data, and the boundary table for
/// `spec`. Pure: the same spec always yields byte-identical data and an
/// identical statement sequence.
pub fn build_stream_program(spec: &StreamSpec) -> StreamProgram {
    let hot = spec.hot_schedule();
    let mut b = ProgramBuilder::new(&spec.name);
    let ingest = b.map_fn(|r| r.clone());
    let add = b.reduce_fn(|a, c| {
        Payload::Long(
            a.as_long()
                .unwrap_or(0)
                .wrapping_add(c.as_long().unwrap_or(0)),
        )
    });

    // Statement counter: every bind / persist / unpersist / action below
    // is exactly one statement (and, with no loops, one cursor step).
    let mut stmts = 0usize;
    let mut boundaries = Vec::with_capacity(spec.batches as usize);
    let mut data = DataRegistry::new();

    // --- prologue: resident cached datasets (part of batch 0) ----------
    let mut datasets = Vec::with_capacity(spec.datasets as usize);
    for i in 0..spec.datasets {
        let name = format!("d{i}");
        let src = b.source(&name);
        let v = b.bind(&name, src);
        b.persist(v, StorageLevel::MemoryOnly);
        stmts += 2;
        data.register(
            &name,
            keyed_records(
                spec.dataset_records,
                spec.key_space,
                spec.seed ^ (0xd5 + u64::from(i)),
            ),
        );
        datasets.push(v);
    }

    // --- per-batch blocks ----------------------------------------------
    let width = spec.window.width() as usize;
    let mut panes: VecDeque<VarId> = VecDeque::new();
    let mut state: Option<VarId> = None;
    let mut windows = Vec::new();
    for batch in 0..spec.batches {
        let hot_var = datasets[hot[batch as usize] as usize];
        let src_name = format!("batch{batch}");
        data.register(
            &src_name,
            keyed_records(
                spec.pane_records,
                spec.key_space,
                spec.seed ^ (0xbeef + u64::from(batch) * 0x9e37),
            ),
        );

        // Ingest the pane; it is window state, resident until its window
        // has closed.
        let src = b.source(&src_name);
        let pane = b.bind(&format!("pane{batch}"), src.map(ingest));
        b.persist(pane, StorageLevel::MemoryOnly);
        stmts += 2;

        // Stream-static join against the batch's hot dataset, plus the
        // remaining monitored accesses. The join result is per-batch
        // transient: materialized for the count, then dead.
        let join = b.bind(&format!("join{batch}"), b.var(pane).join(b.var(hot_var)));
        b.action(join, ActionKind::Count);
        stmts += 2;
        for _ in 1..spec.accesses_per_batch {
            b.action(hot_var, ActionKind::Count);
            stmts += 1;
        }

        // Running reduceByKey state: cross-batch lineage, bounded by the
        // key space. The previous state RDD unpersists once folded in.
        let next_state = match state {
            Some(prev) => {
                let s = b.bind(
                    &format!("state{batch}"),
                    b.var(prev).union(b.var(pane)).reduce_by_key(add),
                );
                b.persist(s, StorageLevel::MemoryOnly);
                b.action(s, ActionKind::Count);
                b.unpersist(prev);
                stmts += 4;
                s
            }
            None => {
                let s = b.bind(&format!("state{batch}"), b.var(pane).reduce_by_key(add));
                b.persist(s, StorageLevel::MemoryOnly);
                b.action(s, ActionKind::Count);
                stmts += 3;
                s
            }
        };
        state = Some(next_state);

        // Window emission.
        panes.push_back(pane);
        match spec.window {
            WindowSpec::Tumbling(w) => {
                if (batch + 1).is_multiple_of(w) {
                    let mut it = panes.iter();
                    let mut expr = b.var(*it.next().expect("window has panes"));
                    for p in it {
                        expr = expr.union(b.var(*p));
                    }
                    let name = format!("win{batch}");
                    let win = b.bind(&name, expr.reduce_by_key(add));
                    b.action(win, ActionKind::Collect);
                    stmts += 2;
                    windows.push(name);
                    for p in panes.drain(..) {
                        b.unpersist(p);
                        stmts += 1;
                    }
                }
            }
            WindowSpec::Sliding(_) => {
                if panes.len() > width {
                    let out = panes.pop_front().expect("pane slides out");
                    b.unpersist(out);
                    stmts += 1;
                }
                let mut it = panes.iter();
                let mut expr = b.var(*it.next().expect("window has panes"));
                for p in it {
                    expr = expr.union(b.var(*p));
                }
                let name = format!("win{batch}");
                let win = b.bind(&name, expr.reduce_by_key(add));
                b.action(win, ActionKind::Collect);
                stmts += 2;
                windows.push(name);
            }
        }
        boundaries.push(stmts);
    }

    let (program, fns) = b.finish();
    StreamProgram {
        program,
        fns,
        data,
        boundaries,
        datasets,
        windows,
        hot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_monotone_and_cover_the_program() {
        for window in [WindowSpec::Tumbling(3), WindowSpec::Sliding(2)] {
            let mut spec = StreamSpec::small(5);
            spec.window = window;
            let sp = build_stream_program(&spec);
            assert_eq!(sp.boundaries.len(), spec.batches as usize);
            assert!(sp.boundaries.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(
                *sp.boundaries.last().unwrap(),
                sp.program.stmts.len(),
                "{window:?}: the last boundary must be the end of the program"
            );
        }
    }

    #[test]
    fn window_emissions_match_the_shape() {
        let mut spec = StreamSpec::small(5);
        spec.batches = 9;
        spec.window = WindowSpec::Tumbling(3);
        assert_eq!(build_stream_program(&spec).windows.len(), 3);
        spec.window = WindowSpec::Sliding(4);
        assert_eq!(build_stream_program(&spec).windows.len(), 9);
    }

    #[test]
    fn data_is_seed_deterministic() {
        let a = keyed_records(64, 32, 9);
        let b = keyed_records(64, 32, 9);
        let c = keyed_records(64, 32, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|p| {
            let (k, _) = p.as_pair().expect("keyed");
            (0..32).contains(&k.as_long().expect("long key"))
        }));
    }
}
