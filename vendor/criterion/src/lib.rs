//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small wall-clock harness with criterion's calling conventions:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, and `BatchSize`. Reporting is
//! intentionally simple: per benchmark it prints the median, mean, and
//! minimum of the per-iteration times over a fixed number of timed samples
//! (no statistical regression analysis, no plots).
//!
//! Baselines: set `CRITERION_SAVE_BASELINE=<name>` to write each result to
//! `target/criterion-baselines/<name>.json`-style lines, and
//! `CRITERION_BASELINE=<name>` to print the ratio against a saved baseline.

use std::collections::BTreeMap;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup output is sized (accepted for API compatibility; the
/// harness always runs one setup per timed routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handle passed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<f64>,
    target: usize,
}

impl Bencher {
    fn new(target: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(target),
            target,
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..2 {
            std_black_box(routine());
        }
        for _ in 0..self.target {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        std_black_box(routine(setup()));
        for _ in 0..self.target {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows its input.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut first = setup();
        std_black_box(routine(&mut first));
        for _ in 0..self.target {
            let mut input = setup();
            let t0 = Instant::now();
            std_black_box(routine(&mut input));
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn baseline_dir() -> PathBuf {
    PathBuf::from("target").join("criterion-baselines")
}

fn load_baseline(name: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let path = baseline_dir().join(format!("{name}.tsv"));
    if let Ok(body) = std::fs::read_to_string(path) {
        for line in body.lines() {
            if let Some((k, v)) = line.rsplit_once('\t') {
                if let Ok(v) = v.parse::<f64>() {
                    out.insert(k.to_string(), v);
                }
            }
        }
    }
    out
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    save_baseline: Option<String>,
    compare_baseline: BTreeMap<String, f64>,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_count = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(15);
        let save_baseline = std::env::var("CRITERION_SAVE_BASELINE").ok();
        let compare_baseline = std::env::var("CRITERION_BASELINE")
            .ok()
            .map(|n| load_baseline(&n))
            .unwrap_or_default();
        Criterion {
            sample_count,
            save_baseline,
            compare_baseline,
        }
    }
}

impl Criterion {
    /// Parse criterion-style CLI args (accepted and ignored: the harness
    /// has no filtering or plotting).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Override the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(3);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_count: None,
        }
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        let mut sorted = b.samples.clone();
        sorted.sort_by(f64::total_cmp);
        let med = median(&sorted);
        let mean = sorted.iter().sum::<f64>() / sorted.len().max(1) as f64;
        let min = sorted.first().copied().unwrap_or(0.0);
        print!(
            "{name:<44} median {:>10}  mean {:>10}  min {:>10}",
            fmt_time(med),
            fmt_time(mean),
            fmt_time(min)
        );
        if let Some(base) = self.compare_baseline.get(name) {
            if med > 0.0 {
                print!("  baseline x{:.2}", base / med);
            }
        }
        println!();
        if let Some(ref base) = self.save_baseline {
            let dir = baseline_dir();
            let _ = std::fs::create_dir_all(&dir);
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join(format!("{base}.tsv")))
            {
                let _ = writeln!(f, "{name}\t{med}");
            }
        }
        self
    }
}

/// A composite benchmark name (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Name a benchmark `function/parameter`.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function}/{parameter}"),
        }
    }

    /// Name a benchmark by its parameter only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(3));
        self
    }

    /// Run one benchmark named `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.run(&full, f);
        self
    }

    /// Run one parameterized benchmark named `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.full);
        self.run(&full, |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) {
        let saved = self.criterion.sample_count;
        if let Some(n) = self.sample_count {
            self.criterion.sample_count = n;
        }
        self.criterion.bench_function(full_name, &mut f);
        self.criterion.sample_count = saved;
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// A measured duration (compat alias used by some bench code).
pub type MeasuredDuration = Duration;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion {
            sample_count: 3,
            save_baseline: None,
            compare_baseline: BTreeMap::new(),
        };
        let mut hits = 0u32;
        c.bench_function("t", |b| b.iter(|| hits += 1));
        assert!(hits >= 3);
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-5).ends_with("µs"));
        assert!(fmt_time(5e-2).ends_with("ms"));
        assert!(fmt_time(2.0).ends_with('s'));
    }
}
