//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! deterministic re-implementation of the slice of proptest it uses:
//! strategies (ranges, tuples, `Just`, `prop_oneof!`, collections, options,
//! `sample::Index`, `prop_map` / `prop_filter` / `prop_flat_map`), the
//! `proptest!` macro, and the `prop_assert*` family. Differences from real
//! proptest:
//!
//! * generation is seeded per test function (FNV of the function name), so
//!   every run explores the same cases — reproducibility over novelty;
//! * there is no shrinking: a failing case panics with the regular
//!   assertion message;
//! * `prop_assert*` are plain `assert*` wrappers.

/// Deterministic test-case generator state.
pub mod test_runner {
    /// Per-function pseudo-random generator (xoshiro-style SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from a test-function name.
        pub fn for_fn(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        ///
        /// # Panics
        ///
        /// Panics if `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A test-case failure raised from inside a property body (via `?`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A hard failure with a reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }

        /// A rejection (treated identically to failure here).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Runner configuration (only `cases` is meaningful here).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: deterministic value factories.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A value factory. Unlike real proptest there is no shrinking, so a
    /// strategy is just "generate one value from the rng".
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Retain only values satisfying `f` (bounded retry).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Generate a value, then generate from the strategy it induces.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }

        /// Recursive structures: `self` generates leaves, `recurse` wraps an
        /// inner strategy one level deeper. Up to `depth` levels; the size
        /// hints of real proptest are accepted but unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let inner = strat.clone();
                strat = Union(vec![strat, recurse(inner).boxed()]).boxed();
            }
            strat
        }
    }

    /// Object-safe erased strategy.
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter {:?} rejected 1000 candidates in a row",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between erased strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start() as i128, *self.end() as i128);
                    assert!(s <= e, "empty range strategy");
                    let span = (e - s + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (s + v as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(i64, u64, i32, u32, u16, i16, u8, i8, usize, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (s, e) = (*self.start(), *self.end());
            assert!(s <= e, "empty range strategy");
            s + rng.unit_f64() * (e - s)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(i64, u64, i32, u32, u16, i16, u8, i8, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Mostly moderate finite values, occasionally extreme bit patterns
        /// (infinities/NaN included) so `prop_filter("finite", ...)` guards
        /// are exercised.
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(8) {
                0 => f64::from_bits(rng.next_u64()),
                1 => (rng.next_u64() as i64 as f64) * 1e-3,
                _ => (rng.unit_f64() - 0.5) * 2e6,
            }
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (real proptest: `any::<T>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }

    /// String-pattern strategies: a `&str` used as a strategy generates
    /// strings. Real proptest interprets the pattern as a regex; this shim
    /// generates printable strings of length 0..64 (with occasional
    /// non-ASCII), which is what the fuzz-style patterns in this workspace
    /// (`"\\PC*"`) need.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(64) as usize;
            (0..len)
                .map(|_| match rng.below(16) {
                    0 => char::from_u32(0xA1 + rng.below(0x2000) as u32).unwrap_or('¿'),
                    1 => '\n',
                    _ => (0x20 + rng.below(0x5f) as u8) as char,
                })
                .collect()
        }
    }
}

/// The `prop::` module tree mirrored from real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Element-count specification for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<core::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: core::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let n = self.size.lo
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span) as usize
                    };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy producing `Option<S::Value>` (`None` one time in four).
        pub struct OptionStrategy<S>(S);

        /// `prop::option::of(strategy)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use crate::strategy::Arbitrary;
        use crate::test_runner::TestRng;

        /// An abstract index resolvable against any collection length.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// This index within a collection of `len` elements.
            ///
            /// # Panics
            ///
            /// Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index(0)");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property (plain `assert!`: no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when an assumption fails (the property body runs
/// inside a `Result`-returning closure, so early return works).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The `proptest!` block: one or more `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_fn(stringify!($name));
                for __case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    // The immediately-invoked closure is the `?`-catching
                    // boundary (a stable stand-in for try blocks).
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = __outcome {
                        panic!("property case {} failed: {e}", __case);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec(0i64..100, 1..8);
        let mut a = crate::test_runner::TestRng::for_fn("x");
        let mut b = crate::test_runner::TestRng::for_fn("x");
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3i64..9, y in any::<u8>(), v in prop::collection::vec(0usize..4, 0..5)) {
            prop_assert!((3..9).contains(&x));
            let _ = y;
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|e| *e < 4));
        }

        #[test]
        fn oneof_and_combinators(p in prop_oneof![Just(0i64), 5i64..10, (20i64..30).prop_map(|v| v * 2)]) {
            prop_assert!(p == 0 || (5..10).contains(&p) || (40..60).contains(&p));
        }
    }
}
