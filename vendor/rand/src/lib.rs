//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: a seedable,
//! deterministic [`rngs::StdRng`] plus the [`RngExt`] convenience methods
//! (`random`, `random_range`). The generator is xoshiro256++ seeded via
//! SplitMix64 — high quality, stable across platforms, and fully
//! reproducible, which is all the simulator's dataset generators need.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their whole domain (`rng.random()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `rng.random_range(range)`.
pub trait SampleRange {
    /// The sampled value's type.
    type Output;
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(i64, u64, i32, u32, usize, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A uniformly random value of `T` (`[0, 1)` for floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value drawn from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let f = r.random_range(1.0..10.0);
            assert!((1.0..10.0).contains(&f));
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
